package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctjam/internal/rl"
)

const (
	testStateDim = 6
	testActions  = 4
)

// writeLearnerFile saves a small random-weight DQN learner state (CTDQ) and
// returns the learner for reference decisions.
func writeLearnerFile(t testing.TB, path string, seed int64) *rl.DQN {
	t.Helper()
	cfg := rl.DefaultDQNConfig(testStateDim, testActions)
	cfg.Hidden = []int{8}
	cfg.Seed = seed
	d, err := rl.NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return d
}

// newTestServer builds a Server over one freshly written model file.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *rl.Snapshot, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.ctdq")
	learner := writeLearnerFile(t, path, 7)
	snap, err := learner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Models:   []ModelSpec{{Name: "default", Path: path}},
		Batching: true,
		MaxBatch: 8,
		Window:   100 * time.Microsecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, snap, path
}

func randStates(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		randState(rng, out[i])
	}
	return out
}

func flatten(states [][]float64) []float64 {
	var flat []float64
	for _, s := range states {
		flat = append(flat, s...)
	}
	return flat
}

func postJSON(t testing.TB, url string, body []byte) (DecideResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out, resp
}

func postDecide(t testing.TB, base string, req DecideRequest) (DecideResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postJSON(t, base+"/v1/decide", body)
}

func TestDecideMatchesSnapshot(t *testing.T) {
	for _, batching := range []bool{true, false} {
		name := "batching-off"
		if batching {
			name = "batching-on"
		}
		t.Run(name, func(t *testing.T) {
			srv, snap, _ := newTestServer(t, func(c *Config) { c.Batching = batching })
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			states := randStates(rand.New(rand.NewSource(1)), 9, testStateDim)
			want := make([]int, len(states))
			if err := snap.GreedyBatch(want, flatten(states)); err != nil {
				t.Fatal(err)
			}

			// Single-state form (the micro-batched path when batching is on).
			out, resp := postDecide(t, ts.URL, DecideRequest{State: states[0]})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("single decide status %d", resp.StatusCode)
			}
			if out.Action == nil || *out.Action != want[0] {
				t.Fatalf("single action = %v, want %d", out.Action, want[0])
			}

			// Batch form with Q values (always the direct path).
			out, resp = postDecide(t, ts.URL, DecideRequest{States: states, QValues: true})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("batch decide status %d", resp.StatusCode)
			}
			if len(out.Actions) != len(states) {
				t.Fatalf("got %d actions, want %d", len(out.Actions), len(states))
			}
			for i, a := range out.Actions {
				if a != want[i] {
					t.Fatalf("action %d = %d, want %d", i, a, want[i])
				}
			}
			qWant := make([]float64, len(states)*testActions)
			if err := snap.QValuesBatch(qWant, flatten(states)); err != nil {
				t.Fatal(err)
			}
			for i := range states {
				for j := 0; j < testActions; j++ {
					if out.Q[i][j] != qWant[i*testActions+j] {
						t.Fatalf("q[%d][%d] = %v, want %v", i, j, out.Q[i][j], qWant[i*testActions+j])
					}
				}
			}
		})
	}
}

func TestDecideRejectsBadRequests(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []DecideRequest{
		{},                            // neither state nor states
		{State: []float64{1, 2}},      // wrong dimension
		{States: [][]float64{{1, 2}}}, // wrong dimension in batch
		{States: [][]float64{}},       // empty batch
		{State: make([]float64, testStateDim),
			States: randStates(rand.New(rand.NewSource(2)), 1, testStateDim)}, // both
	}
	for i, req := range cases {
		out, resp := postDecide(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		if out.Error == "" {
			t.Fatalf("case %d: 400 without JSON error body", i)
		}
	}

	// Malformed JSON must also give a JSON 400, not a decoder panic.
	out, resp := postJSON(t, ts.URL+"/v1/decide", []byte(`{"state": [1,`))
	if resp.StatusCode != http.StatusBadRequest || out.Error == "" {
		t.Fatalf("malformed JSON: status %d error %q, want JSON 400", resp.StatusCode, out.Error)
	}

	if resp, err := http.Get(ts.URL + "/v1/decide"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET decide status %d, want 405", resp.StatusCode)
	}

	var stats map[string]any
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if stats["errors"].(float64) < float64(len(cases)) {
		t.Fatalf("stats errors = %v, want >= %d", stats["errors"], len(cases))
	}
}

// TestDecideBodyCap proves the request-body cap returns a JSON 413 and that
// a request under the cap still works.
func TestDecideBodyCap(t *testing.T) {
	srv, _, _ := newTestServer(t, func(c *Config) { c.MaxBody = 512 })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big, err := json.Marshal(DecideRequest{States: randStates(rand.New(rand.NewSource(3)), 64, testStateDim)})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 512 {
		t.Fatalf("test body only %d bytes", len(big))
	}
	out, resp := postJSON(t, ts.URL+"/v1/decide", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(out.Error, "512") {
		t.Fatalf("413 error %q does not name the cap", out.Error)
	}

	if out, resp := postDecide(t, ts.URL, DecideRequest{State: make([]float64, testStateDim)}); resp.StatusCode != http.StatusOK || out.Action == nil {
		t.Fatalf("small body after 413: status %d", resp.StatusCode)
	}
}

func TestMultiModelRoutingAndReload(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.ctdq")
	pathB := filepath.Join(dir, "b.ctdq")
	learnerA := writeLearnerFile(t, pathA, 7)
	learnerB := writeLearnerFile(t, pathB, 99)
	snapA, err := learnerA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := learnerB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{
		Models: []ModelSpec{
			{Name: "alpha", Path: pathA},
			{Name: "beta", Path: pathB},
		},
		Batching: true,
		MaxBatch: 8,
		Window:   100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	states := randStates(rand.New(rand.NewSource(4)), 6, testStateDim)
	wantA := make([]int, len(states))
	wantB := make([]int, len(states))
	if err := snapA.GreedyBatch(wantA, flatten(states)); err != nil {
		t.Fatal(err)
	}
	if err := snapB.GreedyBatch(wantB, flatten(states)); err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range wantA {
		if wantA[i] != wantB[i] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("test models agree on every state; routing test is vacuous")
	}

	check := func(url string, want []int) {
		t.Helper()
		body, _ := json.Marshal(DecideRequest{States: states})
		out, resp := postJSON(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		for i, a := range out.Actions {
			if a != want[i] {
				t.Fatalf("%s: action %d = %d, want %d", url, i, a, want[i])
			}
		}
	}
	// Legacy route serves the first (default) model; named routes each model.
	check(ts.URL+"/v1/decide", wantA)
	check(ts.URL+"/v1/models/alpha/decide", wantA)
	check(ts.URL+"/v1/models/beta/decide", wantB)

	// Unknown models 404 with a JSON error.
	out, resp := postJSON(t, ts.URL+"/v1/models/nope/decide", []byte(`{"state":[0,0,0,0,0,0]}`))
	if resp.StatusCode != http.StatusNotFound || out.Error == "" {
		t.Fatalf("unknown model: status %d error %q", resp.StatusCode, out.Error)
	}

	// Per-model reload: rewrite beta's file with alpha's weights, reload only
	// beta, and watch beta flip while alpha is untouched.
	writeLearnerFile(t, pathB, 7)
	resp, err = http.Post(ts.URL+"/v1/models/beta/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta reload status %d", resp.StatusCode)
	}
	check(ts.URL+"/v1/models/beta/decide", wantA)
	check(ts.URL+"/v1/models/alpha/decide", wantA)

	// A corrupt file fails the reload and keeps the old snapshot serving.
	if err := os.WriteFile(pathA, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/models/alpha/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("reload of garbage succeeded")
	}
	check(ts.URL+"/v1/models/alpha/decide", wantA)

	// Legacy reload-all reports the failure but reloads what it can.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("reload-all with a corrupt model succeeded")
	}

	// The registry listing names both models and the default.
	var listing struct {
		Models []map[string]any `json:"models"`
	}
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Models) != 2 {
		t.Fatalf("listing has %d models, want 2", len(listing.Models))
	}
	for _, m := range listing.Models {
		isDefault := m["default"].(bool)
		if (m["name"] == "alpha") != isDefault {
			t.Fatalf("model %v default=%v, want alpha only", m["name"], isDefault)
		}
	}
}

func TestStatsHistograms(t *testing.T) {
	srv, _, _ := newTestServer(t, func(c *Config) { c.MaxBatch = 4; c.Window = 50 * time.Microsecond })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		if _, resp := postDecide(t, ts.URL, DecideRequest{State: randStates(rng, 1, testStateDim)[0]}); resp.StatusCode != http.StatusOK {
			t.Fatalf("decide %d: status %d", i, resp.StatusCode)
		}
	}

	var stats struct {
		Requests float64 `json:"requests"`
		Batching struct {
			Enabled  bool    `json:"enabled"`
			MaxBatch float64 `json:"max_batch"`
			WindowUS float64 `json:"window_us"`
		} `json:"batching"`
		Models map[string]struct {
			Requests  float64 `json:"requests"`
			States    float64 `json:"states_served"`
			LatencyUS struct {
				Count   float64            `json:"count"`
				MeanUS  float64            `json:"mean_us"`
				P50     float64            `json:"p50_us"`
				P95     float64            `json:"p95_us"`
				P99     float64            `json:"p99_us"`
				Buckets map[string]float64 `json:"buckets"`
			} `json:"latency_us"`
			Batch struct {
				Flushes       float64 `json:"flushes"`
				FlushesFull   float64 `json:"flushes_full"`
				FlushesWindow float64 `json:"flushes_window"`
				MeanFill      float64 `json:"mean_fill"`
			} `json:"batch"`
		} `json:"models"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m, ok := stats.Models["default"]
	if !ok {
		t.Fatalf("stats models = %v, want default", stats.Models)
	}
	if m.Requests != 40 || m.States != 40 {
		t.Fatalf("requests/states = %v/%v, want 40/40", m.Requests, m.States)
	}
	if m.LatencyUS.Count != 40 {
		t.Fatalf("latency count %v, want 40", m.LatencyUS.Count)
	}
	if m.LatencyUS.P50 <= 0 || m.LatencyUS.P95 < m.LatencyUS.P50 || m.LatencyUS.P99 < m.LatencyUS.P95 {
		t.Fatalf("latency quantiles not monotone: p50=%v p95=%v p99=%v",
			m.LatencyUS.P50, m.LatencyUS.P95, m.LatencyUS.P99)
	}
	if len(m.LatencyUS.Buckets) == 0 {
		t.Fatal("latency histogram has no buckets")
	}
	// Serial requests flush as singletons via the window timer; the batch
	// distribution must account for every state either way.
	if m.Batch.Flushes <= 0 || m.Batch.Flushes != m.Batch.FlushesFull+m.Batch.FlushesWindow {
		t.Fatalf("flushes %v != full %v + window %v",
			m.Batch.Flushes, m.Batch.FlushesFull, m.Batch.FlushesWindow)
	}
	if m.Batch.MeanFill < 1 {
		t.Fatalf("mean fill %v < 1", m.Batch.MeanFill)
	}
	if !stats.Batching.Enabled || stats.Batching.MaxBatch != 4 || stats.Batching.WindowUS != 50 {
		t.Fatalf("batching block = %+v", stats.Batching)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health map[string]any
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status %v", health["status"])
	}
	if int(health["state_dim"].(float64)) != testStateDim || int(health["num_actions"].(float64)) != testActions {
		t.Fatalf("healthz dims %v x %v", health["state_dim"], health["num_actions"])
	}

	// After BeginDrain, decides 503 (JSON) and healthz reports draining.
	srv.BeginDrain()
	out, resp2 := postDecide(t, ts.URL, DecideRequest{State: make([]float64, testStateDim)})
	if resp2.StatusCode != http.StatusServiceUnavailable || out.Error == "" {
		t.Fatalf("draining decide: status %d error %q, want JSON 503", resp2.StatusCode, out.Error)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "draining" {
		t.Fatalf("healthz status after drain = %v", health["status"])
	}
	// Idempotent.
	srv.BeginDrain()
}

// TestGracefulShutdownDrainsInFlight wires the Server to a real http.Server
// and proves the SIGTERM path: BeginDrain + Shutdown completes while open
// streaming sessions exist, without dropping their in-flight decisions.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	srv, snap, _ := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Open a session and complete one decision so the connection is live.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/session", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	state := make([]float64, testStateDim)
	want := make([]int, 1)
	if err := snap.GreedyBatch(want, state); err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(pw)
	dec := json.NewDecoder(resp.Body)
	if err := enc.Encode(DecideRequest{State: state}); err != nil {
		t.Fatal(err)
	}
	var out DecideResponse
	if err := dec.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Action == nil || *out.Action != want[0] {
		t.Fatalf("session action %v, want %d", out.Action, want[0])
	}

	// Drain with the session still open: the blocked read must unblock and
	// the server must close the stream promptly.
	doneDrain := make(chan struct{})
	go func() {
		srv.BeginDrain()
		close(doneDrain)
	}()
	select {
	case <-doneDrain:
	case <-time.After(5 * time.Second):
		t.Fatal("BeginDrain hung")
	}
	readDone := make(chan error, 1)
	go func() {
		var out DecideResponse
		readDone <- dec.Decode(&out)
	}()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("session kept serving after drain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not unblock after drain")
	}
	pw.Close()
}
