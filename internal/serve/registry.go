package serve

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/policy"
)

// decidePolicy is what the serving layer needs from a model: the batched
// decision surface of policy.DQN. It is an interface so tests can substitute
// instrumented policies under the batcher.
type decidePolicy interface {
	StateDim() int
	NumActions() int
	DecideBatch(states []float64, actions []int) error
	QValuesBatch(dst, states []float64) error
}

// ModelSpec names one checkpoint to serve.
type ModelSpec struct {
	Name string // route segment: /v1/models/{name}/...
	Path string // checkpoint file (CTJM, CTDQ or CTTC)
	// Fast serves the model on the float32+FMA inference fast path. Q-values
	// and (rarely, at exact-Q near-ties) decisions can differ from the exact
	// float64 engine within the fast path's tolerance/agreement budgets;
	// leave it off for anything that must replay bit-identically.
	Fast bool
}

// Model is one named checkpoint in the registry: the hot-swappable policy,
// its admission queue, and its serving counters. The policy pointer swaps
// atomically on reload; in-flight batches keep the policy they were pinned
// to, so every flush is evaluated by exactly one model generation.
type Model struct {
	name string
	path string
	fast bool

	pol     atomic.Pointer[polBox]
	reloads atomic.Int64

	batcher *Batcher
	stats   Stats
}

// polBox wraps the policy interface so the atomic pointer has one concrete
// type regardless of which decidePolicy implementation is loaded.
type polBox struct{ decidePolicy }

// Name returns the registry name.
func (m *Model) Name() string { return m.name }

// Path returns the checkpoint path the model reloads from.
func (m *Model) Path() string { return m.path }

// Engine names the inference engine this model serves on: "fast32" for the
// float32 fast path, "exact" for the float64 reference.
func (m *Model) Engine() string {
	if m.fast {
		return "fast32"
	}
	return "exact"
}

// Reloads returns how many times the checkpoint has been (re)loaded.
func (m *Model) Reloads() int64 { return m.reloads.Load() }

// policy returns the current decision policy.
func (m *Model) policy() decidePolicy { return m.pol.Load().decidePolicy }

// Reload re-reads the checkpoint and atomically swaps the policy in;
// in-flight requests keep the policy they already hold, and a failed read
// keeps the previous policy serving.
func (m *Model) Reload() error {
	f, err := os.Open(m.path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := core.SnapshotFromCheckpoint(f)
	if err != nil {
		return fmt.Errorf("load %s: %w", m.path, err)
	}
	if m.fast {
		if snap, err = snap.Fast32(); err != nil {
			return fmt.Errorf("load %s: %w", m.path, err)
		}
	}
	pol, err := policy.NewDQN(m.name, snap)
	if err != nil {
		return err
	}
	m.pol.Store(&polBox{pol})
	m.reloads.Add(1)
	return nil
}

// Registry holds the fixed set of named models one server process serves.
// The set is established at startup; what each name serves changes only via
// Reload. Lookups are lock-free map reads.
type Registry struct {
	models      map[string]*Model
	names       []string // sorted, for stable listings
	defaultName string
}

// NewRegistry loads every spec and builds the model set. The first spec is
// the default model (served on the legacy un-named routes) unless defaultName
// picks another. Each model gets its own admission queue with the given
// batch parameters.
func NewRegistry(specs []ModelSpec, defaultName string, maxBatch int, window time.Duration) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: registry needs at least one model")
	}
	r := &Registry{models: make(map[string]*Model, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("serve: model %q needs a name", spec.Path)
		}
		if _, dup := r.models[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", spec.Name)
		}
		m := &Model{name: spec.Name, path: spec.Path, fast: spec.Fast}
		if err := m.Reload(); err != nil {
			return nil, fmt.Errorf("serve: model %q: %w", spec.Name, err)
		}
		b, err := newBatcher(m, maxBatch, window)
		if err != nil {
			return nil, err
		}
		m.batcher = b
		r.models[spec.Name] = m
		r.names = append(r.names, spec.Name)
	}
	sort.Strings(r.names)
	r.defaultName = specs[0].Name
	if defaultName != "" {
		if _, ok := r.models[defaultName]; !ok {
			return nil, fmt.Errorf("serve: default model %q is not in the registry", defaultName)
		}
		r.defaultName = defaultName
	}
	return r, nil
}

// Lookup returns the named model, or nil if unknown.
func (r *Registry) Lookup(name string) *Model { return r.models[name] }

// Default returns the model behind the legacy un-named routes.
func (r *Registry) Default() *Model { return r.models[r.defaultName] }

// Names returns the model names in sorted order.
func (r *Registry) Names() []string { return r.names }

// ReloadAll reloads every model, returning the first error (remaining models
// still reload; a bad checkpoint must not block the others).
func (r *Registry) ReloadAll() error {
	var firstErr error
	for _, name := range r.names {
		if err := r.models[name].Reload(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// closeAll drains every model's admission queue.
func (r *Registry) closeAll() {
	for _, name := range r.names {
		r.models[name].batcher.Close()
	}
}
