package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePolicy counts DecideBatch calls and their sizes; action = index of the
// first feature truncated to int, so tests can check scatter correctness.
type fakePolicy struct {
	dim, actions int
	calls        atomic.Int64
	maxSeen      atomic.Int64
	states       atomic.Int64
	entered      atomic.Int64  // DecideBatch invocations, counted before blocking
	block        chan struct{} // if non-nil, DecideBatch waits on it
}

func (f *fakePolicy) StateDim() int   { return f.dim }
func (f *fakePolicy) NumActions() int { return f.actions }

func (f *fakePolicy) DecideBatch(states []float64, actions []int) error {
	f.entered.Add(1)
	if f.block != nil {
		<-f.block
	}
	n := len(actions)
	if len(states) != n*f.dim {
		return fmt.Errorf("fake: %d states for %d actions", len(states), n)
	}
	f.calls.Add(1)
	f.states.Add(int64(n))
	for {
		max := f.maxSeen.Load()
		if int64(n) <= max || f.maxSeen.CompareAndSwap(max, int64(n)) {
			break
		}
	}
	for i := range actions {
		actions[i] = int(states[i*f.dim])
	}
	return nil
}

func (f *fakePolicy) QValuesBatch(dst, states []float64) error {
	return fmt.Errorf("fake: no q values")
}

// newFakeModel wires a fakePolicy into a Model + Batcher without touching
// disk.
func newFakeModel(t *testing.T, pol *fakePolicy, maxBatch int, window time.Duration) *Model {
	t.Helper()
	m := &Model{name: "fake", path: "fake"}
	m.pol.Store(&polBox{pol})
	b, err := newBatcher(m, maxBatch, window)
	if err != nil {
		t.Fatal(err)
	}
	m.batcher = b
	return m
}

// TestBatcherCoalesces blocks the policy so admissions pile up, then proves
// they flush as one call, each caller getting its own action back.
func TestBatcherCoalesces(t *testing.T) {
	const k = 16
	pol := &fakePolicy{dim: 2, actions: k, block: make(chan struct{})}
	m := newFakeModel(t, pol, k, time.Hour) // window never fires; fill triggers
	var wg sync.WaitGroup
	results := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := m.batcher.Decide([]float64{float64(i), 0.5})
			if err != nil {
				t.Errorf("decide %d: %v", i, err)
				return
			}
			results[i] = a
		}(i)
	}
	// Let all k admissions land; the k-th fills the batch and flushes into
	// the blocked policy (entered counts before the block).
	deadline := time.Now().Add(5 * time.Second)
	for pol.entered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(pol.block)
	wg.Wait()

	if got := pol.calls.Load(); got != 1 {
		t.Fatalf("policy called %d times, want 1 fused call", got)
	}
	if got := pol.maxSeen.Load(); got != k {
		t.Fatalf("fused batch size %d, want %d", got, k)
	}
	for i, a := range results {
		if a != i {
			t.Fatalf("caller %d got action %d (scatter mixed up results)", i, a)
		}
	}
	if m.stats.FlushFull.Load() != 1 || m.stats.FlushWindow.Load() != 0 {
		t.Fatalf("flush counters full=%d window=%d, want 1/0",
			m.stats.FlushFull.Load(), m.stats.FlushWindow.Load())
	}
}

// TestBatcherWindowFlush proves a lone admission is released by the window
// timer, not stuck waiting for a full batch.
func TestBatcherWindowFlush(t *testing.T) {
	pol := &fakePolicy{dim: 1, actions: 4}
	m := newFakeModel(t, pol, 64, 2*time.Millisecond)
	start := time.Now()
	a, err := m.batcher.Decide([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if a != 3 {
		t.Fatalf("action %d, want 3", a)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lone decide took %v; window flush broken", elapsed)
	}
	if m.stats.FlushWindow.Load() != 1 || m.stats.FlushFull.Load() != 0 {
		t.Fatalf("flush counters full=%d window=%d, want 0/1",
			m.stats.FlushFull.Load(), m.stats.FlushWindow.Load())
	}
	if fill := m.stats.BatchFill.Mean(); fill != 1 {
		t.Fatalf("mean fill %v, want 1", fill)
	}
}

// TestBatcherDimSwap hot-swaps the policy to different dimensions while a
// batch is filling: the pending batch must flush against the policy it was
// admitted under, and new admissions must use the new dimensions. maxBatch
// is 2 so the post-swap batch flushes by fill, with no timer involved.
func TestBatcherDimSwap(t *testing.T) {
	polA := &fakePolicy{dim: 2, actions: 4}
	m := newFakeModel(t, polA, 2, time.Hour)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if a, err := m.batcher.Decide([]float64{7, 0}); err != nil || a != 7 {
			t.Errorf("old-dim decide: action %d err %v", a, err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.batcher.mu.Lock()
		pending := m.batcher.cur != nil && m.batcher.cur.n == 1
		m.batcher.mu.Unlock()
		if pending {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Swap in a 3-feature policy and run two new-shape decides: the first
	// flushes the pinned 2-feature singleton (unblocking the old caller) and
	// re-admits itself; the second fills the new batch to 2 and flushes it.
	polB := &fakePolicy{dim: 3, actions: 4}
	m.pol.Store(&polBox{polB})
	for _, v := range []float64{9, 11} {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			if a, err := m.batcher.Decide([]float64{v, 0, 0}); err != nil {
				t.Errorf("new-dim decide(%v): %v", v, err)
			} else if a != int(v) {
				t.Errorf("new-dim action %d, want %v", a, v)
			}
		}(v)
	}
	wg.Wait()

	if polA.maxSeen.Load() != 1 || polB.maxSeen.Load() != 2 {
		t.Fatalf("flushes went to the wrong policies: A=%d B=%d states",
			polA.states.Load(), polB.states.Load())
	}
	// A wrong-dimension state against the current policy is rejected.
	if _, err := m.batcher.Decide([]float64{1}); err == nil {
		t.Fatal("dim-1 state accepted by dim-3 policy")
	}
}

// TestBatcherClose proves drain semantics: the pending batch flushes
// immediately and later admissions still complete (as singleton flushes)
// rather than hanging on timers.
func TestBatcherClose(t *testing.T) {
	pol := &fakePolicy{dim: 1, actions: 4}
	m := newFakeModel(t, pol, 64, time.Hour) // window never fires in this test

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if a, err := m.batcher.Decide([]float64{2}); err != nil || a != 2 {
			t.Errorf("pre-close decide: action %d err %v", a, err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.batcher.mu.Lock()
		pending := m.batcher.cur != nil
		m.batcher.mu.Unlock()
		if pending {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.batcher.Close()
	wg.Wait() // would hang forever if Close did not flush (window is 1h)

	// Post-close admissions flush immediately as singletons.
	if a, err := m.batcher.Decide([]float64{5}); err != nil || a != 5 {
		t.Fatalf("post-close decide: action %d err %v", a, err)
	}
	m.batcher.Close() // idempotent
}

// TestBatcherConcurrentHammer drives many goroutines through admission,
// window flushes and full flushes at once under -race, and checks every
// caller gets its own result.
func TestBatcherConcurrentHammer(t *testing.T) {
	pol := &fakePolicy{dim: 1, actions: 1 << 20}
	m := newFakeModel(t, pol, 8, 50*time.Microsecond)
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := g*perG + i
				a, err := m.batcher.Decide([]float64{float64(v)})
				if err != nil {
					t.Errorf("decide(%d): %v", v, err)
					return
				}
				if a != v {
					t.Errorf("decide(%d) = %d: cross-request scatter corrupted", v, a)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := pol.states.Load(); got != goroutines*perG {
		t.Fatalf("policy saw %d states, want %d", got, goroutines*perG)
	}
	flushes := m.stats.FlushFull.Load() + m.stats.FlushWindow.Load()
	if flushes == 0 || flushes > goroutines*perG {
		t.Fatalf("implausible flush count %d for %d decisions", flushes, goroutines*perG)
	}
	if calls := pol.calls.Load(); calls != flushes {
		t.Fatalf("policy calls %d != flushes %d", calls, flushes)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist must report zeros")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	// Bucket upper bounds: the reported quantile must bracket the true one
	// within the 2x bucket resolution.
	for _, tc := range []struct{ q, truth float64 }{{0.50, 500}, {0.95, 950}, {0.99, 990}} {
		got := float64(h.Quantile(tc.q))
		if got < tc.truth || got > 2*tc.truth {
			t.Fatalf("q%.0f = %v, want in [%v, %v]", tc.q*100, got, tc.truth, 2*tc.truth)
		}
	}
	if m := h.Mean(); m != 500.5 {
		t.Fatalf("mean %v, want 500.5", m)
	}
	var total int64
	for _, c := range h.Buckets() {
		total += c
	}
	if total != 1000 {
		t.Fatalf("bucket counts sum to %d, want 1000", total)
	}
	// Negative observations clamp rather than corrupting the low bucket math.
	h.Observe(-5)
	if h.Count() != 1001 {
		t.Fatalf("count after clamp %d", h.Count())
	}
}
