package env

import (
	"fmt"
	"strconv"
	"strings"
)

// Fingerprint returns a canonical string identity of the configuration: two
// configs produce equal fingerprints iff every simulation-relevant field
// matches. Floats are rendered with strconv's shortest round-trippable form,
// so distinct values never collide; fault injectors are rendered as their Go
// value (%#v), which spells out the concrete type and every parameter —
// Injector.Name alone would collide two burst injectors with different
// probabilities. Experiment sweeps use this as the memoization key for
// per-point compute reuse.
func (c Config) Fingerprint() string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString("k=")
	b.WriteString(strconv.Itoa(c.Channels))
	b.WriteString(",m=")
	b.WriteString(strconv.Itoa(c.SweepWidth))
	b.WriteString(",jm=")
	b.WriteString(strconv.Itoa(int(c.JammerMode)))
	b.WriteString(",lh=")
	b.WriteString(fmtFloat(c.LossHop))
	b.WriteString(",lj=")
	b.WriteString(fmtFloat(c.LossJam))
	b.WriteString(",seed=")
	b.WriteString(strconv.FormatInt(c.Seed, 10))
	b.WriteString(",tx=")
	writeFloats(&b, c.TxPowers)
	b.WriteString(",jp=")
	writeFloats(&b, c.JamPowers)
	// The jammer spec joins the fingerprint only when it deviates from the
	// default sweeper, so every pre-zoo cache key, scheme key and golden
	// file stays byte-identical.
	if canon := c.JammerCanonical(); canon != "sweep" {
		b.WriteString(",jam=")
		b.WriteString(canon)
	}
	if c.Faults != nil {
		b.WriteString(",fault=")
		fmt.Fprintf(&b, "%#v", c.Faults)
	}
	return b.String()
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeFloats(b *strings.Builder, xs []float64) {
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(fmtFloat(x))
	}
}
