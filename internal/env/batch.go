package env

import (
	"fmt"
	"math/rand"

	"ctjam/internal/metrics"
)

// BatchAgent decides for K independent links in lockstep: one call per slot
// gathers every link's previous-slot observation and scatters one decision
// back per link. The batched inference engine (internal/policy) implements
// this by stacking the K encoded states into a single network forward.
type BatchAgent interface {
	// Name identifies the scheme, as in Agent.
	Name() string
	// Len returns K, the number of links the agent was built for.
	Len() int
	// ResetBatch prepares all K per-link states; rngs[i] is link i's
	// private RNG (len(rngs) must be Len()).
	ResetBatch(rngs []*rand.Rand) error
	// DecideBatch fills out[i] with the decision for link i given prev[i].
	// Both slices have length Len().
	DecideBatch(prev []SlotInfo, out []Decision) error
}

// agentBatch adapts K independent per-link Agents to the BatchAgent
// interface by looping. It exists so lockstep drivers (env.BatchRun,
// iot.BatchRun, the field engine's cluster scheduler) can mix schemes whose
// policies have no stacked-inference implementation — each cluster keeps its
// own mutable agent, and the batch call is just the slot-boundary barrier.
type agentBatch struct {
	agents []Agent
}

// NewAgentBatch wraps independent agents (one per link/cluster) as a
// BatchAgent. Decisions are computed link-by-link in index order, so results
// are identical to driving each agent serially.
func NewAgentBatch(agents []Agent) (BatchAgent, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("env: agent batch needs at least one agent")
	}
	for i, a := range agents {
		if a == nil {
			return nil, fmt.Errorf("env: agent batch slot %d is nil", i)
		}
	}
	return &agentBatch{agents: agents}, nil
}

// Name implements BatchAgent: the wrapped agents share one scheme name in
// practice, so the first agent names the batch.
func (b *agentBatch) Name() string { return b.agents[0].Name() }

// Len implements BatchAgent.
func (b *agentBatch) Len() int { return len(b.agents) }

// ResetBatch implements BatchAgent.
func (b *agentBatch) ResetBatch(rngs []*rand.Rand) error {
	if len(rngs) != len(b.agents) {
		return fmt.Errorf("env: agent batch sized for %d links, got %d rngs", len(b.agents), len(rngs))
	}
	for i, a := range b.agents {
		a.Reset(rngs[i])
	}
	return nil
}

// DecideBatch implements BatchAgent.
func (b *agentBatch) DecideBatch(prev []SlotInfo, out []Decision) error {
	if len(prev) != len(b.agents) || len(out) != len(b.agents) {
		return fmt.Errorf("env: agent batch sized for %d links, got %d/%d slots", len(b.agents), len(prev), len(out))
	}
	for i, a := range b.agents {
		out[i] = a.Decide(prev[i])
	}
	return nil
}

// BatchRun steps len(envs) independent environments in lockstep through a
// BatchAgent for the given number of slots, returning per-environment
// Table I counters.
//
// Determinism contract (same as internal/parallel): each link derives its
// agent RNG from its own environment's seed exactly as Run does, so the
// results are bit-identical to len(envs) serial Run calls over the same
// environments, at any batch size. Environments are consumed as-is (not
// reset), matching Run.
func BatchRun(envs []*Environment, a BatchAgent, slots int) ([]metrics.Counters, error) {
	counters, _, err := batchRun(envs, a, slots, false)
	return counters, err
}

// BatchRunTrace is BatchRun plus a per-slot trace for every environment.
func BatchRunTrace(envs []*Environment, a BatchAgent, slots int) ([]metrics.Counters, [][]SlotRecord, error) {
	return batchRun(envs, a, slots, true)
}

func batchRun(envs []*Environment, a BatchAgent, slots int, trace bool) ([]metrics.Counters, [][]SlotRecord, error) {
	k := len(envs)
	if k == 0 {
		return nil, nil, fmt.Errorf("env: batch run needs at least one environment")
	}
	if a.Len() != k {
		return nil, nil, fmt.Errorf("env: batch agent %s sized for %d links, got %d environments", a.Name(), a.Len(), k)
	}
	if slots <= 0 {
		return nil, nil, fmt.Errorf("env: slots %d must be positive", slots)
	}
	rngs := make([]*rand.Rand, k)
	for i, e := range envs {
		rngs[i] = rand.New(rand.NewSource(e.cfg.Seed + 0x5eed))
	}
	if err := a.ResetBatch(rngs); err != nil {
		return nil, nil, fmt.Errorf("env: batch reset (agent %s): %w", a.Name(), err)
	}

	counters := make([]metrics.Counters, k)
	var records [][]SlotRecord
	if trace {
		records = make([][]SlotRecord, k)
		for i := range records {
			records[i] = make([]SlotRecord, 0, slots)
		}
	}
	prevs := make([]SlotInfo, k)
	decs := make([]Decision, k)
	for i, e := range envs {
		prevs[i] = SlotInfo{First: true, Channel: e.CurrentChannel()}
	}
	for s := 0; s < slots; s++ {
		if err := a.DecideBatch(prevs, decs); err != nil {
			return nil, nil, fmt.Errorf("env: slot %d (agent %s): %w", s, a.Name(), err)
		}
		for i, e := range envs {
			d := decs[i]
			res, err := e.Step(d.Channel, d.Power)
			if err != nil {
				return nil, nil, fmt.Errorf("env %d slot %d (agent %s): %w", i, s, a.Name(), err)
			}
			if trace {
				records[i] = append(records[i], SlotRecord{
					Slot:     s,
					Channel:  d.Channel,
					Power:    d.Power,
					Outcome:  res.Outcome,
					Hopped:   res.Hopped,
					Reward:   res.Reward,
					JamPower: res.JamPower,
				})
			}
			c := &counters[i]
			c.Slots++
			if res.Outcome.Succeeded() {
				c.Successes++
			}
			if res.Outcome != OutcomeSuccess {
				c.JammedSlots++
			}
			if res.Outcome == OutcomeJammed {
				c.JamLosses++
			}
			if res.Hopped {
				c.Hops++
			}
			if res.UsefulHop {
				c.UsefulHops++
			}
			if d.Power > 0 {
				c.PCSlots++
			}
			if res.UsefulPC {
				c.UsefulPCs++
			}
			prevs[i] = SlotInfo{
				Slot:    s + 1,
				Channel: d.Channel,
				Power:   d.Power,
				Outcome: res.Outcome,
				Hopped:  res.Hopped,
			}
		}
	}
	return counters, records, nil
}
