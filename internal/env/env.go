// Package env implements the time-slotted jamming environment the paper's
// DQN is trained and evaluated in: a victim ZigBee link hopping among K
// channels with M transmit power levels, attacked by a cross-technology
// jammer. The default attacker is the paper's sweeper, which scans m
// consecutive channels per slot (sweep cycle ceil(K/m)) and locks on once it
// finds the victim; Config.Jammer selects any strategy from the jammer zoo
// (reactive, adaptive, energy-budgeted) by spec string.
//
// Each slot the victim (hub) chooses a channel and power level; the
// environment resolves the jammer's move and reports the outcome plus the
// paper's Eq. (5) reward: -L_p - L_H*[hopped] - L_J*[jammed successfully].
package env

import (
	"fmt"
	"math/rand"

	"ctjam/internal/fault"
	"ctjam/internal/jammer"
	"ctjam/internal/metrics"
	"ctjam/internal/rng"
)

// Outcome classifies a slot from the victim's perspective, mirroring the
// paper's MDP states: success (states n), jammed-but-survived (TJ, the
// jamming power lost the duel), and jammed (J).
type Outcome int

// Slot outcomes.
const (
	// OutcomeSuccess means the slot was not jammed.
	OutcomeSuccess Outcome = iota + 1
	// OutcomeJammedSurvived means the jammer hit the channel but the
	// victim's power out-dueled it (transmission still succeeded).
	OutcomeJammedSurvived
	// OutcomeJammed means the transmission was lost to jamming.
	OutcomeJammed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeJammedSurvived:
		return "jammed-survived"
	case OutcomeJammed:
		return "jammed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Succeeded reports whether data got through this slot.
func (o Outcome) Succeeded() bool { return o == OutcomeSuccess || o == OutcomeJammedSurvived }

// Config parameterizes the environment. DefaultConfig reproduces the
// paper's simulation settings (§IV-A1).
type Config struct {
	// Channels is K, the number of ZigBee channels (16 on 2.4 GHz).
	Channels int
	// SweepWidth is m, the channels the jammer scans per slot (4).
	SweepWidth int
	// TxPowers are the victim's power levels; the values double as the
	// per-slot power loss L_p (paper: [6,15]).
	TxPowers []float64
	// JamPowers are the jammer's levels (paper: [11,20]).
	JamPowers []float64
	// JammerMode selects max or random jamming power.
	JammerMode jammer.PowerMode
	// Jammer selects the attacker strategy by spec string (see
	// jammer.ParseSpec); empty means the paper's sweeper. The canonical
	// form participates in Fingerprint, so it keys caches, scheme reuse
	// and the dist wire format.
	Jammer string
	// LossHop is L_H, the frequency-hopping loss (50).
	LossHop float64
	// LossJam is L_J, the successful-jamming loss (100).
	LossJam float64
	// Seed drives all environment randomness.
	Seed int64
	// Faults optionally injects channel impairments on top of the jammer
	// (burst noise, ACK loss); nil disables fault injection. Injectors
	// are pure functions of (seed, slot), so they preserve determinism
	// and compose with checkpoint/resume without extra state.
	Faults fault.Injector
}

// DefaultConfig returns the paper's simulation parameters: K=16, m=4 (sweep
// cycle 4), L^T in [6,15], L^J in [11,20], L_H=50, L_J=100, max-power
// jammer.
func DefaultConfig() Config {
	tx := make([]float64, 10)
	jam := make([]float64, 10)
	for i := 0; i < 10; i++ {
		tx[i] = float64(6 + i)
		jam[i] = float64(11 + i)
	}
	return Config{
		Channels:   16,
		SweepWidth: 4,
		TxPowers:   tx,
		JamPowers:  jam,
		JammerMode: jammer.ModeMax,
		LossHop:    50,
		LossJam:    100,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 1 {
		return fmt.Errorf("env: need at least 2 channels, got %d", c.Channels)
	}
	if c.SweepWidth <= 0 || c.SweepWidth > c.Channels {
		return fmt.Errorf("env: sweep width %d out of range [1,%d]", c.SweepWidth, c.Channels)
	}
	if len(c.TxPowers) == 0 || len(c.JamPowers) == 0 {
		return fmt.Errorf("env: power level lists must be non-empty")
	}
	for i := 1; i < len(c.TxPowers); i++ {
		if c.TxPowers[i] < c.TxPowers[i-1] {
			return fmt.Errorf("env: tx powers must be non-decreasing")
		}
	}
	if c.LossHop < 0 || c.LossJam < 0 {
		return fmt.Errorf("env: losses must be non-negative")
	}
	if c.JammerMode != jammer.ModeMax && c.JammerMode != jammer.ModeRandom {
		return fmt.Errorf("env: unknown jammer mode %v", c.JammerMode)
	}
	if _, err := jammer.ParseSpec(c.Jammer); err != nil {
		return fmt.Errorf("env: jammer spec: %w", err)
	}
	return nil
}

// JammerCanonical returns the canonical form of the jammer spec ("sweep" for
// the default). It panics on an invalid spec; call Validate first.
func (c Config) JammerCanonical() string {
	canon, err := jammer.Canonical(c.Jammer)
	if err != nil {
		panic(fmt.Sprintf("env: invalid jammer spec %q: %v", c.Jammer, err))
	}
	return canon
}

// SweepCycle returns ceil(K/m), the paper's sweep cycle length.
func (c Config) SweepCycle() int {
	return (c.Channels + c.SweepWidth - 1) / c.SweepWidth
}

// StepResult reports everything about one resolved slot.
type StepResult struct {
	// Outcome is the victim-visible result.
	Outcome Outcome
	// Reward is the Eq. (5) immediate reward.
	Reward float64
	// Hopped reports whether the victim changed channels this slot.
	Hopped bool
	// JamPower is the jammer's level this slot (0 when not co-channel).
	JamPower float64
	// UsefulHop marks a hop away from a block the jammer was actively
	// locked on, that ended in a successful slot (Table I's SH
	// numerator).
	UsefulHop bool
	// UsefulPC marks a slot where elevated power survived a jam that the
	// minimum power would have lost (Table I's SP numerator).
	UsefulPC bool
}

// Environment is the slot-level simulation. Not safe for concurrent use.
type Environment struct {
	cfg     Config
	jam     jammer.Strategy
	rng     *rand.Rand
	rngSrc  *rng.Source
	channel int
	slot    int
	started bool
}

// New builds an Environment.
func New(cfg Config) (*Environment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Environment{cfg: cfg}
	e.Reset()
	return e, nil
}

// Config returns the environment configuration.
func (e *Environment) Config() Config { return e.cfg }

// NumChannels returns K.
func (e *Environment) NumChannels() int { return e.cfg.Channels }

// NumPowers returns the number of victim power levels.
func (e *Environment) NumPowers() int { return len(e.cfg.TxPowers) }

// CurrentChannel returns the victim's channel as of the last step (or the
// random initial channel).
func (e *Environment) CurrentChannel() int { return e.channel }

// Slot returns the number of executed slots.
func (e *Environment) Slot() int { return e.slot }

// Reset reinitializes jammer and victim positions deterministically from
// the seed. Strategy construction draws nothing from the RNG (part of the
// Strategy contract), so the victim's initial channel draw is identical
// across attacker kinds.
func (e *Environment) Reset() {
	e.rng, e.rngSrc = rng.New(e.cfg.Seed)
	jam, err := jammer.New(e.cfg.Jammer, e.cfg.Channels, e.cfg.SweepWidth, e.cfg.JamPowers, e.cfg.JammerMode, e.rng)
	if err != nil {
		// Config was validated in New; a failure here is a programming
		// error.
		panic(fmt.Sprintf("env: jammer construction failed after validation: %v", err))
	}
	e.jam = jam
	e.channel = e.rng.Intn(e.cfg.Channels)
	e.slot = 0
	e.started = false
}

// Step resolves one slot in which the victim transmits on channel with
// power index power.
func (e *Environment) Step(channel, power int) (StepResult, error) {
	if channel < 0 || channel >= e.cfg.Channels {
		return StepResult{}, fmt.Errorf("env: channel %d out of range [0,%d)", channel, e.cfg.Channels)
	}
	if power < 0 || power >= len(e.cfg.TxPowers) {
		return StepResult{}, fmt.Errorf("env: power index %d out of range [0,%d)", power, len(e.cfg.TxPowers))
	}

	hopped := e.started && channel != e.channel
	oldChannel := e.channel

	// Capture whether the jammer was focused on the victim's previous
	// block before it reacts, to attribute useful hops. Focus generalizes
	// the sweeper's lock to the whole strategy zoo.
	lockedOnOld := false
	if block, ok := e.jam.Focus(); ok {
		if oldBlock, err := jammer.BlockIndex(e.cfg.Channels, e.cfg.SweepWidth, oldChannel); err == nil && block == oldBlock {
			lockedOnOld = true
		}
	}

	jammed, jamPower, err := e.jam.Step(channel)
	if err != nil {
		return StepResult{}, fmt.Errorf("env: jammer step: %w", err)
	}

	// Fold in injected faults. Burst noise acts as a second interferer:
	// the victim duels whichever of the jammer and the noise is stronger.
	// A lost ACK makes a delivered slot observationally identical to a
	// jammed one from the hub's side, so it degrades the outcome to J.
	var flt fault.Slot
	if e.cfg.Faults != nil {
		e.cfg.Faults.Apply(int64(e.slot), &flt)
	}
	interference := 0.0
	if jammed {
		interference = jamPower
	}
	if flt.NoisePower > interference {
		interference = flt.NoisePower
	}

	outcome := OutcomeSuccess
	if jammed || flt.NoisePower > 0 {
		if e.cfg.TxPowers[power] >= interference {
			outcome = OutcomeJammedSurvived
		} else {
			outcome = OutcomeJammed
		}
	}
	if flt.AckLoss && outcome != OutcomeJammed {
		outcome = OutcomeJammed
	}

	reward := -e.cfg.TxPowers[power]
	if hopped {
		reward -= e.cfg.LossHop
	}
	if outcome == OutcomeJammed {
		reward -= e.cfg.LossJam
	}

	res := StepResult{
		Outcome:   outcome,
		Reward:    reward,
		Hopped:    hopped,
		UsefulHop: hopped && lockedOnOld && outcome.Succeeded(),
		UsefulPC: power > 0 && jammed && outcome == OutcomeJammedSurvived &&
			e.cfg.TxPowers[0] < jamPower,
	}
	if jammed {
		res.JamPower = jamPower
	}

	e.channel = channel
	e.slot++
	e.started = true
	return res, nil
}

// State is a serializable snapshot of a running Environment, sufficient to
// resume stepping bit-identically. It captures the shared environment/jammer
// RNG, the victim position and the jammer strategy's state.
type State struct {
	RNG     uint64
	Channel int
	Slot    int
	Started bool
	Jammer  jammer.State
}

// State snapshots the environment for checkpointing.
func (e *Environment) State() State {
	return State{
		RNG:     e.rngSrc.State(),
		Channel: e.channel,
		Slot:    e.slot,
		Started: e.started,
		Jammer:  e.jam.State(),
	}
}

// SetState restores a snapshot taken with State. The environment must have
// been built with the same Config; kind and range validation of the jammer
// payload is delegated to the strategy.
func (e *Environment) SetState(st State) error {
	if st.Channel < 0 || st.Channel >= e.cfg.Channels {
		return fmt.Errorf("env: state channel %d out of range [0,%d)", st.Channel, e.cfg.Channels)
	}
	if st.Slot < 0 {
		return fmt.Errorf("env: state slot %d must be non-negative", st.Slot)
	}
	if err := e.jam.SetState(st.Jammer); err != nil {
		return err
	}
	e.rngSrc.SetState(st.RNG)
	e.channel = st.Channel
	e.slot = st.Slot
	e.started = st.Started
	return nil
}

// Decision is the hub's choice for the next slot.
type Decision struct {
	Channel int
	Power   int
}

// SlotInfo summarizes the previous slot for an agent's next decision.
type SlotInfo struct {
	// Slot is the index of the next slot to decide.
	Slot int
	// Channel and Power are the previous slot's decision.
	Channel int
	Power   int
	// Outcome is the previous slot's result (zero on the first call).
	Outcome Outcome
	// Hopped reports whether the previous slot hopped.
	Hopped bool
	// First is true for the first decision of a run.
	First bool
}

// Agent is an anti-jamming policy driving the victim hub.
type Agent interface {
	// Name identifies the scheme ("RL FH", "Rand FH", "PSV FH", ...).
	Name() string
	// Reset prepares the agent for a fresh run.
	Reset(rng *rand.Rand)
	// Decide returns the channel and power for the next slot.
	Decide(prev SlotInfo) Decision
}

// SlotRecord captures one executed slot for trace analysis (channel usage
// plots, policy debugging, hop-pattern inspection).
type SlotRecord struct {
	Slot    int
	Channel int
	Power   int
	Outcome Outcome
	Hopped  bool
	Reward  float64
	// JamPower is the jammer's level when co-channel (0 otherwise).
	JamPower float64
}

// Run drives the agent through the environment for the given number of
// slots, returning Table I counters. The agent receives its own RNG derived
// from the environment seed so runs are reproducible.
func Run(e *Environment, a Agent, slots int) (metrics.Counters, error) {
	c, _, err := run(e, a, slots, false)
	return c, err
}

// RunTrace is Run plus a per-slot trace.
func RunTrace(e *Environment, a Agent, slots int) (metrics.Counters, []SlotRecord, error) {
	return run(e, a, slots, true)
}

func run(e *Environment, a Agent, slots int, trace bool) (metrics.Counters, []SlotRecord, error) {
	if slots <= 0 {
		return metrics.Counters{}, nil, fmt.Errorf("env: slots %d must be positive", slots)
	}
	agentRNG := rand.New(rand.NewSource(e.cfg.Seed + 0x5eed))
	a.Reset(agentRNG)

	var (
		c       metrics.Counters
		records []SlotRecord
	)
	if trace {
		records = make([]SlotRecord, 0, slots)
	}
	prev := SlotInfo{First: true, Channel: e.CurrentChannel()}
	for s := 0; s < slots; s++ {
		d := a.Decide(prev)
		res, err := e.Step(d.Channel, d.Power)
		if err != nil {
			return metrics.Counters{}, nil, fmt.Errorf("slot %d (agent %s): %w", s, a.Name(), err)
		}
		if trace {
			records = append(records, SlotRecord{
				Slot:     s,
				Channel:  d.Channel,
				Power:    d.Power,
				Outcome:  res.Outcome,
				Hopped:   res.Hopped,
				Reward:   res.Reward,
				JamPower: res.JamPower,
			})
		}
		c.Slots++
		if res.Outcome.Succeeded() {
			c.Successes++
		}
		if res.Outcome != OutcomeSuccess {
			c.JammedSlots++
		}
		if res.Outcome == OutcomeJammed {
			c.JamLosses++
		}
		if res.Hopped {
			c.Hops++
		}
		if res.UsefulHop {
			c.UsefulHops++
		}
		if d.Power > 0 {
			c.PCSlots++
		}
		if res.UsefulPC {
			c.UsefulPCs++
		}
		prev = SlotInfo{
			Slot:    s + 1,
			Channel: d.Channel,
			Power:   d.Power,
			Outcome: res.Outcome,
			Hopped:  res.Hopped,
		}
	}
	return c, records, nil
}
