package env

import (
	"testing"

	"ctjam/internal/fault"
	"ctjam/internal/jammer"
)

// TestFingerprintDistinguishesFields asserts the Fingerprint contract the
// sweep-point cache keys on: equal configs collide, and changing any
// simulation-relevant field — including fault injector parameters, which
// share an Injector.Name — separates the fingerprints.
func TestFingerprintDistinguishesFields(t *testing.T) {
	base := DefaultConfig()
	if got, want := base.Fingerprint(), DefaultConfig().Fingerprint(); got != want {
		t.Fatalf("equal configs fingerprint differently:\n%s\n%s", got, want)
	}

	variants := map[string]func(*Config){
		"channels":   func(c *Config) { c.Channels = 12 },
		"sweepwidth": func(c *Config) { c.SweepWidth = 2 },
		"jammermode": func(c *Config) { c.JammerMode = jammer.ModeRandom },
		"losshop":    func(c *Config) { c.LossHop = 51 },
		"lossjam":    func(c *Config) { c.LossJam = 99 },
		"seed":       func(c *Config) { c.Seed = 2 },
		"txpowers":   func(c *Config) { c.TxPowers = append([]float64{5}, c.TxPowers[1:]...) },
		"jampowers":  func(c *Config) { c.JamPowers = append([]float64{12}, c.JamPowers[1:]...) },
		"fault": func(c *Config) {
			c.Faults = fault.BurstNoise{Seed: c.Seed, Prob: 0.1, Len: 50, Power: 30}
		},
		"fault-params": func(c *Config) {
			c.Faults = fault.BurstNoise{Seed: c.Seed, Prob: 0.2, Len: 50, Power: 30}
		},
		"fault-chain": func(c *Config) {
			c.Faults = fault.Chain{
				fault.BurstNoise{Seed: c.Seed, Prob: 0.1, Len: 50, Power: 30},
				fault.AckLoss{Seed: c.Seed, Prob: 0.02},
			}
		},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range variants {
		cfg := DefaultConfig()
		mutate(&cfg)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, fp)
		}
		seen[fp] = name
	}
}
