package env

import (
	"strings"
	"testing"
)

// conformanceJammerSpecs mirrors the jammer package's cross-strategy roster:
// every registered kind plus parameterized variants, as the environment-level
// conformance suite drives them.
var conformanceJammerSpecs = []string{
	"",
	"sweep",
	"reactive",
	"reactive:delay=0",
	"reactive:delay=2,miss=0.2,hold=3",
	"adaptive",
	"adaptive:alpha=0.5,explore=0",
	"budget",
	"budget:duty=0.25,burst=4,over=(reactive:delay=1,miss=0.1)",
	"budget:duty=0.75,over=(adaptive:alpha=0.2)",
}

// TestJammerSpecStateRestoreContinuesIdentically extends the environment's
// snapshot/restore guarantee across the whole jammer zoo: for every strategy,
// a mid-run State capture restored into a fresh environment continues
// bit-identically.
func TestJammerSpecStateRestoreContinuesIdentically(t *testing.T) {
	for _, spec := range conformanceJammerSpecs {
		name := spec
		if name == "" {
			name = "(default)"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Seed = 29
			cfg.Jammer = spec

			e1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scripted(e1, 400)
			snap := e1.State()
			want := scripted(e1, 400)

			e2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scripted(e2, 57) // perturb so the restore provably overwrites
			if err := e2.SetState(snap); err != nil {
				t.Fatal(err)
			}
			got := scripted(e2, 400)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("slot %d after restore: %+v != %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFingerprintDistinguishesJammerSpecs pins the cache-key contract: any
// two configs differing only in (canonical) jammer spec fingerprint
// differently, while spellings of the same spec — and the default attacker
// vs. explicit "sweep" — collide exactly.
func TestFingerprintDistinguishesJammerSpecs(t *testing.T) {
	fps := make(map[string]string)
	for _, spec := range conformanceJammerSpecs {
		cfg := DefaultConfig()
		cfg.Jammer = spec
		if err := cfg.Validate(); err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		canon := cfg.JammerCanonical()
		fp := cfg.Fingerprint()
		if prev, ok := fps[canon]; ok {
			if prev != fp {
				t.Errorf("canonical %q fingerprints both %q and %q", canon, prev, fp)
			}
			continue
		}
		for c, prev := range fps {
			if prev == fp {
				t.Errorf("specs %q and %q share fingerprint %q", c, canon, fp)
			}
		}
		fps[canon] = fp
	}

	// The default attacker's fingerprint is byte-identical to the pre-zoo
	// format: no jam= tag at all, so every existing cache key and golden
	// trace still resolves.
	base := DefaultConfig()
	for _, spec := range []string{"", "sweep", " sweep "} {
		cfg := base
		cfg.Jammer = spec
		if got, want := cfg.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("Jammer=%q fingerprint %q, want the pre-zoo %q", spec, got, want)
		}
	}
	if fp := base.Fingerprint(); strings.Contains(fp, "jam=") {
		t.Errorf("default fingerprint %q carries a jam= tag", fp)
	}
	cfg := base
	cfg.Jammer = "reactive"
	if fp := cfg.Fingerprint(); !strings.Contains(fp, ",jam=reactive:delay=1,miss=0,hold=0") {
		t.Errorf("reactive fingerprint %q missing the canonical jam= tag", fp)
	}
}

// TestConfigValidateRejectsBadJammerSpec pins that spec errors surface at
// Validate, before any environment is built.
func TestConfigValidateRejectsBadJammerSpec(t *testing.T) {
	for _, spec := range []string{"pulse", "reactive:", "budget:over=(sweep", "adaptive:alpha=0"} {
		cfg := DefaultConfig()
		cfg.Jammer = spec
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted jammer spec %q", spec)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted jammer spec %q", spec)
		}
	}
}
