package env

import (
	"math/rand"
	"testing"

	"ctjam/internal/fault"
	"ctjam/internal/jammer"
)

// stayAgent never defends: fixed channel, lowest power.
type stayAgent struct{}

func (stayAgent) Name() string               { return "stay" }
func (stayAgent) Reset(*rand.Rand)           {}
func (stayAgent) Decide(p SlotInfo) Decision { return Decision{Channel: p.Channel, Power: 0} }

// scripted drives the environment with a deterministic channel/power pattern.
func scripted(e *Environment, slots int) []StepResult {
	out := make([]StepResult, 0, slots)
	for i := 0; i < slots; i++ {
		ch := (i * 7) % e.NumChannels()
		pw := i % e.NumPowers()
		res, err := e.Step(ch, pw)
		if err != nil {
			panic(err)
		}
		out = append(out, res)
	}
	return out
}

func TestStateRestoreContinuesIdentically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13

	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scripted(e1, 500)
	snap := e1.State()
	want := scripted(e1, 500)

	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb e2 so the restore provably overwrites everything.
	scripted(e2, 123)
	if err := e2.SetState(snap); err != nil {
		t.Fatal(err)
	}
	got := scripted(e2, 500)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d after restore: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestSetStateRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := e.State()

	bad := base
	bad.Channel = cfg.Channels
	if err := e.SetState(bad); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
	bad = base
	bad.Slot = -1
	if err := e.SetState(bad); err == nil {
		t.Fatal("negative slot accepted")
	}
	bad = base
	bad.Jammer = jammer.State{Kind: jammer.KindSweep, Ints: []int64{0, 0, 99}}
	if err := e.SetState(bad); err == nil {
		t.Fatal("out-of-range sweeper block accepted")
	}
	bad = base
	bad.Jammer = jammer.State{Kind: jammer.KindSweep, Ints: []int64{1, -2}}
	if err := e.SetState(bad); err == nil {
		t.Fatal("invalid lock block accepted")
	}
	bad = base
	bad.Jammer = jammer.State{Kind: "reactive", Ints: []int64{0, 0}}
	if err := e.SetState(bad); err == nil {
		t.Fatal("wrong-kind jammer state accepted")
	}
}

// Burst noise must be able to fail a slot the jammer missed, and the result
// must count as a jam loss so the metrics invariants keep holding.
func TestBurstNoiseFailsUnjammedSlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.BurstNoise{Seed: 1, Prob: 1, Len: 1, Power: 1000}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		res, err := e.Step(i%cfg.Channels, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeJammed {
			t.Fatalf("slot %d: outcome %v under overwhelming noise", i, res.Outcome)
		}
	}
}

func TestBurstNoiseSurvivableAtHighPower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.BurstNoise{Seed: 1, Prob: 1, Len: 1, Power: cfg.TxPowers[len(cfg.TxPowers)-1]}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawSurvived := false
	for i := 0; i < 200; i++ {
		res, err := e.Step(i%cfg.Channels, len(cfg.TxPowers)-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == OutcomeJammedSurvived {
			sawSurvived = true
		}
		if res.Outcome == OutcomeSuccess {
			t.Fatalf("slot %d: clean success while noise floor equals tx power", i)
		}
	}
	if !sawSurvived {
		t.Fatal("max tx power never survived equal-power noise")
	}
}

func TestAckLossDegradesOutcome(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.AckLoss{Seed: 1, Prob: 1}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := e.Step(i%cfg.Channels, len(cfg.TxPowers)-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeJammed {
			t.Fatalf("slot %d: outcome %v with every ACK lost", i, res.Outcome)
		}
	}
}

// The metrics invariants must survive arbitrary fault mixes end to end.
func TestRunWithFaultsKeepsInvariants(t *testing.T) {
	inj, err := fault.Parse("burst:p=0.2,power=30;ack:p=0.1", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Faults = inj
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(e, stayAgent{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("counters invalid under faults: %v", err)
	}
	// With p=0.2 bursts above every tx power plus jamming, the static
	// agent must lose strictly more slots than in a clean run.
	clean := DefaultConfig()
	clean.Seed = 3
	e2, err := New(clean)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Run(e2, stayAgent{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if c.JamLosses <= c2.JamLosses {
		t.Fatalf("faulted run lost %d slots, clean run %d", c.JamLosses, c2.JamLosses)
	}
}
