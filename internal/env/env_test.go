package env

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ctjam/internal/jammer"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SweepCycle() != 4 {
		t.Fatalf("sweep cycle = %d, want 4", cfg.SweepCycle())
	}
	if cfg.TxPowers[0] != 6 || cfg.TxPowers[9] != 15 {
		t.Fatalf("tx powers = %v", cfg.TxPowers)
	}
	if cfg.JamPowers[0] != 11 || cfg.JamPowers[9] != 20 {
		t.Fatalf("jam powers = %v", cfg.JamPowers)
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one channel", func(c *Config) { c.Channels = 1 }},
		{"zero width", func(c *Config) { c.SweepWidth = 0 }},
		{"width too big", func(c *Config) { c.SweepWidth = 17 }},
		{"no tx powers", func(c *Config) { c.TxPowers = nil }},
		{"no jam powers", func(c *Config) { c.JamPowers = nil }},
		{"descending tx powers", func(c *Config) { c.TxPowers = []float64{5, 3} }},
		{"negative loss", func(c *Config) { c.LossHop = -1 }},
		{"bad mode", func(c *Config) { c.JammerMode = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeSuccess.String() != "success" ||
		OutcomeJammedSurvived.String() != "jammed-survived" ||
		OutcomeJammed.String() != "jammed" {
		t.Fatal("outcome strings wrong")
	}
	if !strings.Contains(Outcome(9).String(), "9") {
		t.Fatal("unknown outcome string wrong")
	}
	if !OutcomeSuccess.Succeeded() || !OutcomeJammedSurvived.Succeeded() || OutcomeJammed.Succeeded() {
		t.Fatal("Succeeded() wrong")
	}
}

func TestStepValidation(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(-1, 0); err == nil {
		t.Fatal("bad channel: expected error")
	}
	if _, err := e.Step(16, 0); err == nil {
		t.Fatal("channel 16: expected error")
	}
	if _, err := e.Step(0, 10); err == nil {
		t.Fatal("bad power: expected error")
	}
}

func TestResetIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ch := i % 16
		r1, err := e1.Step(ch, 3)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.Step(ch, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("slot %d diverged: %+v vs %+v", i, r1, r2)
		}
	}
	// Reset must restore the initial trajectory.
	e1.Reset()
	e3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r1, _ := e1.Step(2, 0)
		r3, _ := e3.Step(2, 0)
		if r1 != r3 {
			t.Fatalf("reset trajectory diverged at slot %d", i)
		}
	}
}

func TestRewardStructure(t *testing.T) {
	// With a max-power jammer, outcomes and rewards follow Eq. (5)
	// exactly.
	cfg := DefaultConfig()
	cfg.Seed = 7
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := e.CurrentChannel()
	res, err := e.Step(start, 2) // stay, power index 2 (L_p = 8)
	if err != nil {
		t.Fatal(err)
	}
	wantReward := -8.0
	if res.Outcome == OutcomeJammed {
		wantReward -= 100
	}
	if res.Hopped {
		t.Fatal("first step cannot hop")
	}
	if math.Abs(res.Reward-wantReward) > 1e-12 {
		t.Fatalf("reward = %v, want %v", res.Reward, wantReward)
	}
	// Now hop: pay L_H.
	next := (start + 5) % 16
	res, err = e.Step(next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hopped {
		t.Fatal("channel change must be a hop")
	}
	wantReward = -6.0 - 50
	if res.Outcome == OutcomeJammed {
		wantReward -= 100
	}
	if math.Abs(res.Reward-wantReward) > 1e-12 {
		t.Fatalf("hop reward = %v, want %v", res.Reward, wantReward)
	}
}

func TestMaxModeJammerAlwaysWinsDuel(t *testing.T) {
	// Under max mode the jammer's 20 beats every victim power (max 15):
	// any jammed slot must be OutcomeJammed.
	cfg := DefaultConfig()
	cfg.Seed = 9
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawJam := false
	for i := 0; i < 200; i++ {
		res, err := e.Step(3, 9) // stay put at max power
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == OutcomeJammedSurvived {
			t.Fatal("survived a max-power jam with L_p=15 < 20")
		}
		if res.Outcome == OutcomeJammed {
			sawJam = true
			if res.JamPower != 20 {
				t.Fatalf("jam power = %v, want 20", res.JamPower)
			}
		}
	}
	if !sawJam {
		t.Fatal("static victim was never jammed in 200 slots")
	}
}

func TestRandomModeDuelsCanBeWon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JammerMode = jammer.ModeRandom
	cfg.Seed = 11
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	survived, lost := 0, 0
	for i := 0; i < 2000; i++ {
		res, err := e.Step(3, 9) // L_p = 15 beats jam levels 11..15
		if err != nil {
			t.Fatal(err)
		}
		switch res.Outcome {
		case OutcomeJammedSurvived:
			survived++
		case OutcomeJammed:
			lost++
		}
	}
	if survived == 0 || lost == 0 {
		t.Fatalf("random mode should mix outcomes: survived=%d lost=%d", survived, lost)
	}
	// With L_p=15 the victim wins when tau in {11..15}: about half.
	frac := float64(survived) / float64(survived+lost)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("duel win rate %.2f far from 0.5", frac)
	}
}

func TestStaticVictimJamRateMatchesSweepCycle(t *testing.T) {
	// A victim that never hops ends up jammed in nearly all slots after
	// discovery; the pre-lock discovery takes (S+1)/2 slots on average.
	cfg := DefaultConfig()
	cfg.Seed = 13
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jammedSlots := 0
	const slots = 4000
	for i := 0; i < slots; i++ {
		res, err := e.Step(5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeSuccess {
			jammedSlots++
		}
	}
	if frac := float64(jammedSlots) / slots; frac < 0.98 {
		t.Fatalf("static victim only jammed %.3f of slots; lock-on broken?", frac)
	}
}

// hopEverySlotAgent hops to the next channel *block* every slot at minimum
// power. Hopping within the jammer's 4-channel block would not escape a
// locked jammer; crossing blocks does.
type hopEverySlotAgent struct{ cur int }

func (a *hopEverySlotAgent) Name() string         { return "hop-always" }
func (a *hopEverySlotAgent) Reset(rng *rand.Rand) { a.cur = 0 }
func (a *hopEverySlotAgent) Decide(prev SlotInfo) Decision {
	if prev.First {
		a.cur = prev.Channel
		return Decision{Channel: a.cur, Power: 0}
	}
	a.cur = (a.cur + 5) % 16 // +5 changes the 4-channel block every slot
	return Decision{Channel: a.cur, Power: 0}
}

// stayInBlockAgent hops every slot but never leaves its starting block.
type stayInBlockAgent struct{ cur int }

func (a *stayInBlockAgent) Name() string         { return "hop-in-block" }
func (a *stayInBlockAgent) Reset(rng *rand.Rand) {}
func (a *stayInBlockAgent) Decide(prev SlotInfo) Decision {
	if prev.First {
		a.cur = prev.Channel
		return Decision{Channel: a.cur, Power: 0}
	}
	block := a.cur / 4
	a.cur = block*4 + (a.cur+1)%4
	return Decision{Channel: a.cur, Power: 0}
}

func TestRunProducesConsistentCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 17
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(e, &hopEverySlotAgent{}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Slots != 3000 {
		t.Fatalf("slots = %d", c.Slots)
	}
	// Hopping every slot: hops = slots - 1 (first slot cannot hop).
	if c.Hops != 2999 {
		t.Fatalf("hops = %d, want 2999", c.Hops)
	}
	// A per-slot cross-block hopper evades most jamming: ST well above
	// the static victim's ~0.
	if c.ST() < 0.6 {
		t.Fatalf("hop-always ST = %.3f, expected > 0.6", c.ST())
	}
}

func TestHoppingInsideJammedBlockDoesNotEscape(t *testing.T) {
	// Hops that stay within the jammer's 4-channel block must not evade
	// it: the wide-band jammer is exactly what makes CTJ dangerous.
	cfg := DefaultConfig()
	cfg.Seed = 19
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inBlock, err := Run(e, &stayInBlockAgent{}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crossBlock, err := Run(e2, &hopEverySlotAgent{}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if inBlock.ST() > crossBlock.ST()-0.2 {
		t.Fatalf("in-block hopping ST %.3f should be far below cross-block %.3f",
			inBlock.ST(), crossBlock.ST())
	}
}

func TestRunValidation(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e, &hopEverySlotAgent{}, 0); err == nil {
		t.Fatal("zero slots: expected error")
	}
}

func BenchmarkEnvironmentStep(b *testing.B) {
	e, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Step(i%16, i%10); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunTraceMatchesCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 23
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, records, err := RunTrace(e, &hopEverySlotAgent{}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 500 {
		t.Fatalf("trace has %d records, want 500", len(records))
	}
	// Rebuild the counters from the trace; they must agree.
	var successes, hops, jams int
	for i, r := range records {
		if r.Slot != i {
			t.Fatalf("record %d has slot %d", i, r.Slot)
		}
		if r.Outcome.Succeeded() {
			successes++
		}
		if r.Hopped {
			hops++
		}
		if r.Outcome != OutcomeSuccess {
			jams++
			if r.JamPower <= 0 {
				t.Fatalf("jammed record %d has jam power %v", i, r.JamPower)
			}
		}
	}
	if successes != c.Successes || hops != c.Hops || jams != c.JammedSlots {
		t.Fatalf("trace totals (%d,%d,%d) disagree with counters (%d,%d,%d)",
			successes, hops, jams, c.Successes, c.Hops, c.JammedSlots)
	}
	// Run and RunTrace share the same trajectory for the same seed.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Run(e2, &hopEverySlotAgent{}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if c != c2 {
		t.Fatalf("Run and RunTrace diverged: %+v vs %+v", c, c2)
	}
}

func TestRewardBoundsProperty(t *testing.T) {
	// Eq. (5): every reward lies in [-(maxP+L_H+L_J), -minP].
	cfg := DefaultConfig()
	cfg.JammerMode = jammer.ModeRandom
	cfg.Seed = 29
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	lo := -(cfg.TxPowers[9] + cfg.LossHop + cfg.LossJam)
	hi := -cfg.TxPowers[0]
	for i := 0; i < 5000; i++ {
		res, err := e.Step(rng.Intn(16), rng.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		if res.Reward < lo-1e-9 || res.Reward > hi+1e-9 {
			t.Fatalf("slot %d reward %v outside [%v,%v]", i, res.Reward, lo, hi)
		}
	}
}
