//go:build amd64 && !noasm

#include "textflag.h"

// func cpuSupportsAVX() bool
//
// CPUID.1:ECX must report OSXSAVE (bit 27) and AVX (bit 28), and XCR0 must
// show the OS saving XMM and YMM state (bits 1 and 2).
TEXT ·cpuSupportsAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27), DX
	JZ   noavx
	MOVL CX, DX
	ANDL $(1<<28), DX
	JZ   noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func block4AVX(dst, a, b *float64, k, stride, cols4 int)
//
// Four rows of a (row stride k) times b (k x stride), accumulated into four
// rows of dst (row stride `stride`, shared with b), columns [0, cols4) with
// cols4 % 4 == 0. k is outermost and ascending; products use VMULPD then
// VADDPD (no FMA), so every output element gets the scalar kernel's exact
// rounding sequence.
//
// Register plan: SI walks a's current column (AX re-derives the four row
// entries), BX walks b's rows, DI is the dst block origin. Y12-Y15 hold the
// four broadcast a-values for the current k; Y0/Y5 hold b column blocks;
// Y1-Y4 and Y6-Y9 are the per-row products. The j loop does eight columns
// per iteration with a four-column tail.
TEXT ·block4AVX(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ stride+32(FP), R8
	MOVQ cols4+40(FP), R9
	SHLQ $3, R8               // dst/b row stride in bytes
	MOVQ k+24(FP), R11
	SHLQ $3, R11              // a row stride in bytes
	MOVQ R8, R10
	LEAQ (R10)(R10*2), R10    // 3 * row stride, for the fourth dst row

kloop:
	MOVQ SI, AX
	VBROADCASTSD (AX), Y12    // a0[kk]
	ADDQ R11, AX
	VBROADCASTSD (AX), Y13    // a1[kk]
	ADDQ R11, AX
	VBROADCASTSD (AX), Y14    // a2[kk]
	ADDQ R11, AX
	VBROADCASTSD (AX), Y15    // a3[kk]

	MOVQ BX, DX               // cursor into b's row kk
	MOVQ DI, R13              // cursor into dst row 0
	MOVQ R9, R14
	SUBQ $8, R14
	JL   jtail

jloop8:
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y5
	VMULPD  Y0, Y12, Y1
	VADDPD  (R13), Y1, Y1
	VMOVUPD Y1, (R13)
	VMULPD  Y5, Y12, Y6
	VADDPD  32(R13), Y6, Y6
	VMOVUPD Y6, 32(R13)
	VMULPD  Y0, Y13, Y2
	VADDPD  (R13)(R8*1), Y2, Y2
	VMOVUPD Y2, (R13)(R8*1)
	VMULPD  Y5, Y13, Y7
	VADDPD  32(R13)(R8*1), Y7, Y7
	VMOVUPD Y7, 32(R13)(R8*1)
	VMULPD  Y0, Y14, Y3
	VADDPD  (R13)(R8*2), Y3, Y3
	VMOVUPD Y3, (R13)(R8*2)
	VMULPD  Y5, Y14, Y8
	VADDPD  32(R13)(R8*2), Y8, Y8
	VMOVUPD Y8, 32(R13)(R8*2)
	VMULPD  Y0, Y15, Y4
	VADDPD  (R13)(R10*1), Y4, Y4
	VMOVUPD Y4, (R13)(R10*1)
	VMULPD  Y5, Y15, Y9
	VADDPD  32(R13)(R10*1), Y9, Y9
	VMOVUPD Y9, 32(R13)(R10*1)
	ADDQ $64, DX
	ADDQ $64, R13
	SUBQ $8, R14
	JGE  jloop8

jtail:
	ADDQ $8, R14              // remaining columns: 0 or 4 (cols4 % 4 == 0)
	JZ   knext
	VMOVUPD (DX), Y0
	VMULPD  Y0, Y12, Y1
	VADDPD  (R13), Y1, Y1
	VMOVUPD Y1, (R13)
	VMULPD  Y0, Y13, Y2
	VADDPD  (R13)(R8*1), Y2, Y2
	VMOVUPD Y2, (R13)(R8*1)
	VMULPD  Y0, Y14, Y3
	VADDPD  (R13)(R8*2), Y3, Y3
	VMOVUPD Y3, (R13)(R8*2)
	VMULPD  Y0, Y15, Y4
	VADDPD  (R13)(R10*1), Y4, Y4
	VMOVUPD Y4, (R13)(R10*1)

knext:
	ADDQ $8, SI               // next a column
	ADDQ R8, BX               // next b row
	DECQ CX
	JNZ  kloop
	VZEROUPPER
	RET

// func block8AVX(dst, a, b *float64, k, stride, cols4 int)
//
// Eight-row variant of block4AVX: one sweep over b's rows feeds eight output
// rows. Y8-Y15 hold the eight broadcast a-values for the current k, Y0/Y1
// hold b column blocks, Y2-Y7 are product temporaries. Rows 0-3 address off
// R13 and rows 4-7 off R12 = R13 + 4*stride, each using the {0, stride,
// 2*stride, 3*stride} offsets. Same rounding sequence as the scalar kernel.
TEXT ·block8AVX(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ stride+32(FP), R8
	MOVQ cols4+40(FP), R9
	SHLQ $3, R8               // dst/b row stride in bytes
	MOVQ k+24(FP), R11
	SHLQ $3, R11              // a row stride in bytes
	MOVQ R8, R10
	LEAQ (R10)(R10*2), R10    // 3 * row stride

kloop8:
	MOVQ SI, AX
	VBROADCASTSD (AX), Y8     // a0[kk]
	ADDQ R11, AX
	VBROADCASTSD (AX), Y9
	ADDQ R11, AX
	VBROADCASTSD (AX), Y10
	ADDQ R11, AX
	VBROADCASTSD (AX), Y11
	ADDQ R11, AX
	VBROADCASTSD (AX), Y12
	ADDQ R11, AX
	VBROADCASTSD (AX), Y13
	ADDQ R11, AX
	VBROADCASTSD (AX), Y14
	ADDQ R11, AX
	VBROADCASTSD (AX), Y15    // a7[kk]

	MOVQ BX, DX               // cursor into b's row kk
	MOVQ DI, R13              // cursor into dst row 0
	MOVQ R9, R14
	SUBQ $8, R14
	JL   jtail8

jloop88:
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	LEAQ (R13)(R8*4), R12     // cursor into dst row 4
	VMULPD  Y0, Y8, Y2
	VADDPD  (R13), Y2, Y2
	VMOVUPD Y2, (R13)
	VMULPD  Y1, Y8, Y3
	VADDPD  32(R13), Y3, Y3
	VMOVUPD Y3, 32(R13)
	VMULPD  Y0, Y9, Y4
	VADDPD  (R13)(R8*1), Y4, Y4
	VMOVUPD Y4, (R13)(R8*1)
	VMULPD  Y1, Y9, Y5
	VADDPD  32(R13)(R8*1), Y5, Y5
	VMOVUPD Y5, 32(R13)(R8*1)
	VMULPD  Y0, Y10, Y6
	VADDPD  (R13)(R8*2), Y6, Y6
	VMOVUPD Y6, (R13)(R8*2)
	VMULPD  Y1, Y10, Y7
	VADDPD  32(R13)(R8*2), Y7, Y7
	VMOVUPD Y7, 32(R13)(R8*2)
	VMULPD  Y0, Y11, Y2
	VADDPD  (R13)(R10*1), Y2, Y2
	VMOVUPD Y2, (R13)(R10*1)
	VMULPD  Y1, Y11, Y3
	VADDPD  32(R13)(R10*1), Y3, Y3
	VMOVUPD Y3, 32(R13)(R10*1)
	VMULPD  Y0, Y12, Y4
	VADDPD  (R12), Y4, Y4
	VMOVUPD Y4, (R12)
	VMULPD  Y1, Y12, Y5
	VADDPD  32(R12), Y5, Y5
	VMOVUPD Y5, 32(R12)
	VMULPD  Y0, Y13, Y6
	VADDPD  (R12)(R8*1), Y6, Y6
	VMOVUPD Y6, (R12)(R8*1)
	VMULPD  Y1, Y13, Y7
	VADDPD  32(R12)(R8*1), Y7, Y7
	VMOVUPD Y7, 32(R12)(R8*1)
	VMULPD  Y0, Y14, Y2
	VADDPD  (R12)(R8*2), Y2, Y2
	VMOVUPD Y2, (R12)(R8*2)
	VMULPD  Y1, Y14, Y3
	VADDPD  32(R12)(R8*2), Y3, Y3
	VMOVUPD Y3, 32(R12)(R8*2)
	VMULPD  Y0, Y15, Y4
	VADDPD  (R12)(R10*1), Y4, Y4
	VMOVUPD Y4, (R12)(R10*1)
	VMULPD  Y1, Y15, Y5
	VADDPD  32(R12)(R10*1), Y5, Y5
	VMOVUPD Y5, 32(R12)(R10*1)
	ADDQ $64, DX
	ADDQ $64, R13
	SUBQ $8, R14
	JGE  jloop88

jtail8:
	ADDQ $8, R14              // remaining columns: 0 or 4 (cols4 % 4 == 0)
	JZ   knext8
	VMOVUPD (DX), Y0
	LEAQ (R13)(R8*4), R12
	VMULPD  Y0, Y8, Y2
	VADDPD  (R13), Y2, Y2
	VMOVUPD Y2, (R13)
	VMULPD  Y0, Y9, Y3
	VADDPD  (R13)(R8*1), Y3, Y3
	VMOVUPD Y3, (R13)(R8*1)
	VMULPD  Y0, Y10, Y4
	VADDPD  (R13)(R8*2), Y4, Y4
	VMOVUPD Y4, (R13)(R8*2)
	VMULPD  Y0, Y11, Y5
	VADDPD  (R13)(R10*1), Y5, Y5
	VMOVUPD Y5, (R13)(R10*1)
	VMULPD  Y0, Y12, Y6
	VADDPD  (R12), Y6, Y6
	VMOVUPD Y6, (R12)
	VMULPD  Y0, Y13, Y7
	VADDPD  (R12)(R8*1), Y7, Y7
	VMOVUPD Y7, (R12)(R8*1)
	VMULPD  Y0, Y14, Y2
	VADDPD  (R12)(R8*2), Y2, Y2
	VMOVUPD Y2, (R12)(R8*2)
	VMULPD  Y0, Y15, Y3
	VADDPD  (R12)(R10*1), Y3, Y3
	VMOVUPD Y3, (R12)(R10*1)

knext8:
	ADDQ $8, SI               // next a column
	ADDQ R8, BX               // next b row
	DECQ CX
	JNZ  kloop8
	VZEROUPPER
	RET

// func vecMaxZero(dst, src *float64, n4 int)
//
// dst[i] = max(src[i], +0) for i in [0, n4), n4 % 4 == 0 and > 0. VMAXPD
// returns its second source on NaN and on equal-zero ties, so with +0 there
// this matches the scalar `v > 0 ? v : 0` bit for bit.
TEXT ·vecMaxZero(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n4+16(FP), CX
	VXORPD Y1, Y1, Y1
mzloop:
	VMOVUPD (SI), Y0
	VMAXPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ  mzloop
	VZEROUPPER
	RET

// func vecAddRows(dst, row *float64, rows, stride, cols4 int)
//
// Adds row[0:cols4] into each of `rows` rows of dst (row stride `stride`
// values); cols4 % 4 == 0 and both counts > 0. One VADDPD per element, the
// same single rounding as the scalar bias loop.
TEXT ·vecAddRows(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ rows+16(FP), CX
	MOVQ stride+24(FP), R8
	MOVQ cols4+32(FP), R9
	SHLQ $3, R8               // row stride in bytes
arloop:
	MOVQ DI, DX
	MOVQ SI, BX
	MOVQ R9, R14
acloop:
	VMOVUPD (BX), Y0
	VADDPD  (DX), Y0, Y1
	VMOVUPD Y1, (DX)
	ADDQ $32, BX
	ADDQ $32, DX
	SUBQ $4, R14
	JNZ  acloop
	ADDQ R8, DI
	DECQ CX
	JNZ  arloop
	VZEROUPPER
	RET
