//go:build amd64 && !noasm

#include "textflag.h"

// func cpuSupportsFMA() bool
//
// CPUID.1:ECX must report FMA (bit 12), OSXSAVE (bit 27) and AVX (bit 28),
// and XCR0 must show the OS saving XMM and YMM state (bits 1 and 2).
TEXT ·cpuSupportsFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, DX
	ANDL $(1<<12), DX
	JZ   nofma
	MOVL CX, DX
	ANDL $(1<<27), DX
	JZ   nofma
	MOVL CX, DX
	ANDL $(1<<28), DX
	JZ   nofma
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nofma
	MOVB $1, ret+0(FP)
	RET
nofma:
	MOVB $0, ret+0(FP)
	RET

// func dense32FMA4x16(dst, x, w, bias *float32, k, n, n16, relu int)
//
// Fused dense-layer microkernel: four rows of x (row stride k) times w
// (k x n), plus bias, optional ReLU, written to four rows of dst (row stride
// n, shared with w), columns [0, n16) with n16 % 16 == 0.
//
// Unlike the float64 kernels, which stream dst through memory so the scalar
// rounding sequence is preserved, this kernel keeps each 16-column tile's
// eight accumulators (4 rows x 2 YMM of 8 float32) in registers across the
// entire k loop and uses VFMADD231PS: one fused rounding per step instead of
// the scalar kernel's separate multiply and add roundings. The k loop is
// ascending, so per output element the accumulation order matches
// dense32Scalar and the difference is rounding only.
//
// Register plan: the j loop walks 16-column tiles — DI (dst), BX (w) and R9
// (bias) each advance 64 bytes per tile, R12 counts columns down. Inside a
// tile, DX walks x's current column, AX walks w's rows, R13 counts k down.
// Y0-Y7 are the accumulators, Y8-Y11 the four broadcast x-values for the
// current k, Y12/Y13 the w (then bias) column blocks, Y14 the +0 vector for
// ReLU. R8/R11 are the dst-w/x row strides in bytes, R10/R14 their triples
// for row-3 addressing.
TEXT ·dense32FMA4x16(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), BX
	MOVQ bias+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ n+40(FP), R8
	SHLQ $2, R8               // dst/w row stride in bytes
	MOVQ k+32(FP), R11
	SHLQ $2, R11              // x row stride in bytes
	MOVQ R8, R10
	LEAQ (R10)(R10*2), R10    // 3 * dst/w row stride, for row 3
	MOVQ R11, R14
	LEAQ (R14)(R14*2), R14    // 3 * x row stride, for row 3
	MOVQ n16+48(FP), R12      // columns remaining
	MOVQ relu+56(FP), R15

jtile:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ SI, DX               // cursor into x's current column
	MOVQ BX, AX               // cursor into w's row kk, this tile's columns
	MOVQ CX, R13

kloop:
	VBROADCASTSS (DX), Y8            // x0[kk]
	VBROADCASTSS (DX)(R11*1), Y9     // x1[kk]
	VBROADCASTSS (DX)(R11*2), Y10    // x2[kk]
	VBROADCASTSS (DX)(R14*1), Y11    // x3[kk]
	VMOVUPS (AX), Y12
	VMOVUPS 32(AX), Y13
	VFMADD231PS Y12, Y8, Y0
	VFMADD231PS Y13, Y8, Y1
	VFMADD231PS Y12, Y9, Y2
	VFMADD231PS Y13, Y9, Y3
	VFMADD231PS Y12, Y10, Y4
	VFMADD231PS Y13, Y10, Y5
	VFMADD231PS Y12, Y11, Y6
	VFMADD231PS Y13, Y11, Y7
	ADDQ $4, DX               // next x column
	ADDQ R8, AX               // next w row
	DECQ R13
	JNZ  kloop

	VMOVUPS (R9), Y12         // bias, this tile's columns
	VMOVUPS 32(R9), Y13
	VADDPS Y12, Y0, Y0
	VADDPS Y13, Y1, Y1
	VADDPS Y12, Y2, Y2
	VADDPS Y13, Y3, Y3
	VADDPS Y12, Y4, Y4
	VADDPS Y13, Y5, Y5
	VADDPS Y12, Y6, Y6
	VADDPS Y13, Y7, Y7
	TESTQ R15, R15
	JZ    store
	// VMAXPS returns its second source on NaN and equal-zero ties, so with
	// +0 there this matches the scalar `!(v > 0) -> 0` branch bit for bit.
	VXORPS Y14, Y14, Y14
	VMAXPS Y14, Y0, Y0
	VMAXPS Y14, Y1, Y1
	VMAXPS Y14, Y2, Y2
	VMAXPS Y14, Y3, Y3
	VMAXPS Y14, Y4, Y4
	VMAXPS Y14, Y5, Y5
	VMAXPS Y14, Y6, Y6
	VMAXPS Y14, Y7, Y7

store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (DI)(R8*1)
	VMOVUPS Y3, 32(DI)(R8*1)
	VMOVUPS Y4, (DI)(R8*2)
	VMOVUPS Y5, 32(DI)(R8*2)
	VMOVUPS Y6, (DI)(R10*1)
	VMOVUPS Y7, 32(DI)(R10*1)
	ADDQ $64, DI              // next 16-column tile
	ADDQ $64, BX
	ADDQ $64, R9
	SUBQ $16, R12
	JNZ  jtile
	VZEROUPPER
	RET
