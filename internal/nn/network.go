package nn

import (
	"fmt"
	"math/rand"
)

// Param is a trainable parameter tensor with its gradient accumulator.
type Param struct {
	Value *Matrix
	Grad  *Matrix
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// Layer is a differentiable network stage. Forward caches whatever Backward
// needs; Backward accumulates parameter gradients and returns the gradient
// with respect to the layer input.
type Layer interface {
	Forward(x *Matrix) (*Matrix, error)
	Backward(gradOut *Matrix) (*Matrix, error)
	Params() []*Param
}

// grow returns a matrix of the requested shape, reusing buf's backing array
// when it has capacity. Element values are unspecified.
func grow(buf *Matrix, rows, cols int) *Matrix {
	if buf == nil {
		return NewMatrix(rows, cols)
	}
	buf.Reshape(rows, cols)
	return buf
}

// Dense is a fully-connected layer: y = x@W + b.
//
// The layer owns reusable scratch buffers for its forward output and
// backward gradients, so the matrices returned by Forward/Backward are valid
// only until the layer's next Forward/Backward call (see Network.Forward).
type Dense struct {
	W *Param
	B *Param

	lastInput *Matrix
	out       *Matrix // forward output scratch
	dW        *Matrix // weight-gradient scratch
	dx        *Matrix // input-gradient scratch
	nzK       []int   // nonzero-gradient column scratch
}

var _ Layer = (*Dense)(nil)

// NewDense creates a Dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := NewMatrix(in, out)
	w.XavierInit(in, out, rng)
	return &Dense{
		W: &Param{Value: w, Grad: NewMatrix(in, out)},
		B: &Param{Value: NewMatrix(1, out), Grad: NewMatrix(1, out)},
	}
}

// Forward computes x@W + b, caching x for the backward pass.
func (d *Dense) Forward(x *Matrix) (*Matrix, error) {
	d.lastInput = x
	d.out = grow(d.out, x.Rows, d.W.Value.Cols)
	if err := MatMulInto(d.out, x, d.W.Value); err != nil {
		return nil, fmt.Errorf("dense forward: %w", err)
	}
	if err := d.out.AddRowVector(d.B.Value); err != nil {
		return nil, fmt.Errorf("dense forward: %w", err)
	}
	return d.out, nil
}

// Backward accumulates dW = x^T @ g and db = column sums of g, and returns
// dx = g @ W^T. Both products are computed by fused kernels that index the
// untransposed operands directly instead of materializing x^T / W^T; the
// per-element accumulation order matches the naive transpose-then-multiply
// formulation, so gradients are bit-for-bit unchanged.
func (d *Dense) Backward(gradOut *Matrix) (*Matrix, error) {
	if d.lastInput == nil {
		return nil, fmt.Errorf("dense backward called before forward")
	}
	x, w := d.lastInput, d.W.Value
	if x.Rows != gradOut.Rows || w.Cols != gradOut.Cols {
		return nil, fmt.Errorf("dense backward: grad shape (%dx%d) vs input %d rows, %d out cols",
			gradOut.Rows, gradOut.Cols, x.Rows, w.Cols)
	}
	in, out, batch := x.Cols, w.Cols, x.Rows

	// dW[j] = sum_k x[k][j] * g[k]; computed into scratch first, then added,
	// to preserve the Grad += (complete sum) accumulation semantics.
	d.dW = grow(d.dW, in, out)
	for i := range d.dW.Data {
		d.dW.Data[i] = 0
	}
	for j := 0; j < in; j++ {
		dwRow := d.dW.Data[j*out : (j+1)*out]
		for k := 0; k < batch; k++ {
			av := x.Data[k*in+j]
			if av == 0 {
				continue
			}
			gRow := gradOut.Data[k*out : (k+1)*out]
			for c, gv := range gRow {
				dwRow[c] += av * gv
			}
		}
	}
	for i := range d.dW.Data {
		d.W.Grad.Data[i] += d.dW.Data[i]
	}

	bGrad := d.B.Grad.Data
	for i := 0; i < batch; i++ {
		gRow := gradOut.Data[i*out : (i+1)*out]
		for j, gv := range gRow {
			bGrad[j] += gv
		}
	}

	// dx[i][j] = sum_k g[i][k] * W[j][k]: a row of g dotted with a row of W,
	// so both inner streams are contiguous. Q-learning loss gradients are
	// mostly zero (one action per sample), so the nonzero columns of each
	// gradient row are gathered once up front; summation still runs in
	// ascending k, keeping results bit-identical to the dense dot.
	d.dx = grow(d.dx, batch, in)
	if cap(d.nzK) < out {
		d.nzK = make([]int, 0, out)
	}
	for i := 0; i < batch; i++ {
		gRow := gradOut.Data[i*out : (i+1)*out]
		dxRow := d.dx.Data[i*in : (i+1)*in]
		nz := d.nzK[:0]
		for k, gv := range gRow {
			if gv != 0 {
				nz = append(nz, k)
			}
		}
		if len(nz) == out {
			for j := 0; j < in; j++ {
				wRow := w.Data[j*out : (j+1)*out]
				var acc float64
				for k, gv := range gRow {
					acc += gv * wRow[k]
				}
				dxRow[j] = acc
			}
			continue
		}
		for j := 0; j < in; j++ {
			wRow := w.Data[j*out : (j+1)*out]
			var acc float64
			for _, k := range nz {
				acc += gRow[k] * wRow[k]
			}
			dxRow[j] = acc
		}
	}
	return d.dx, nil
}

// Params returns the layer's weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified-linear activation. Like Dense, it reuses scratch
// buffers, so returned matrices are valid only until its next call.
type ReLU struct {
	mask []bool
	out  *Matrix // forward output scratch
	gout *Matrix // backward gradient scratch
}

var _ Layer = (*ReLU)(nil)

// Forward zeroes negative activations.
func (r *ReLU) Forward(x *Matrix) (*Matrix, error) {
	r.out = grow(r.out, x.Rows, x.Cols)
	out := r.out
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			out.Data[i] = v
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Backward gates the incoming gradient by the forward mask.
func (r *ReLU) Backward(gradOut *Matrix) (*Matrix, error) {
	if len(r.mask) != len(gradOut.Data) {
		return nil, fmt.Errorf("relu backward: mask size %d vs grad %d", len(r.mask), len(gradOut.Data))
	}
	r.gout = grow(r.gout, gradOut.Rows, gradOut.Cols)
	out := r.gout
	for i, v := range gradOut.Data {
		if r.mask[i] {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Network is a feed-forward stack of layers.
type Network struct {
	Layers []Layer
}

// NewMLP builds a multi-layer perceptron with the given layer sizes and ReLU
// activations between dense layers (none after the output layer), matching
// the paper's 4-layer architecture when sizes has 4 entries.
func NewMLP(sizes []int, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: mlp needs at least 2 sizes, got %d", len(sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: mlp size %d invalid", s)
		}
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			layers = append(layers, &ReLU{})
		}
	}
	return &Network{Layers: layers}, nil
}

// Forward runs the network on a batch (rows are samples).
//
// The returned matrix is owned by the network's output layer and is only
// valid until the next Forward call on this network; callers that need the
// values afterwards must Clone (or copy) them first.
func (n *Network) Forward(x *Matrix) (*Matrix, error) {
	cur := x
	for i, l := range n.Layers {
		var err error
		cur, err = l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return cur, nil
}

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients.
func (n *Network) Backward(gradOut *Matrix) error {
	cur := gradOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		var err error
		cur, err = n.Layers[i].Backward(cur)
		if err != nil {
			return fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return nil
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters (the paper
// reports 10 664 floats / 42.7 KB for its trained model).
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value.Data)
	}
	return total
}

// Clone returns a structural deep copy of the network (used for DQN target
// networks).
func (n *Network) Clone() (*Network, error) {
	out := &Network{}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			out.Layers = append(out.Layers, &Dense{
				W: &Param{Value: layer.W.Value.Clone(), Grad: NewMatrix(layer.W.Grad.Rows, layer.W.Grad.Cols)},
				B: &Param{Value: layer.B.Value.Clone(), Grad: NewMatrix(layer.B.Grad.Rows, layer.B.Grad.Cols)},
			})
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		default:
			return nil, fmt.Errorf("nn: cannot clone layer type %T", l)
		}
	}
	return out, nil
}

// CopyWeightsFrom overwrites this network's parameters with src's. The two
// networks must have identical shapes.
func (n *Network) CopyWeightsFrom(src *Network) error {
	dst, from := n.Params(), src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(from))
	}
	for i := range dst {
		if len(dst[i].Value.Data) != len(from[i].Value.Data) {
			return fmt.Errorf("nn: parameter %d shape mismatch", i)
		}
		copy(dst[i].Value.Data, from[i].Value.Data)
	}
	return nil
}

// MSELoss returns the mean-squared-error 0.5*mean((pred-target)^2) and its
// gradient with respect to pred.
func MSELoss(pred, target *Matrix) (float64, *Matrix, error) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		return 0, nil, fmt.Errorf("nn: mse shape mismatch (%dx%d) vs (%dx%d)",
			pred.Rows, pred.Cols, target.Rows, target.Cols)
	}
	grad := NewMatrix(pred.Rows, pred.Cols)
	var loss float64
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += 0.5 * d * d / n
		grad.Data[i] = d / n
	}
	return loss, grad, nil
}
