package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness suite: Load consumes untrusted bytes (model files travel to
// IoT devices, §IV-B), so arbitrary input must produce errors, not panics
// or huge allocations.

func TestLoadNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		net, err := Load(bytes.NewReader(data))
		// Either a clean error or a usable network.
		if err == nil && net == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTruncatedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewMLP([]int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must error, never panic or succeed.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
}

func TestLoadBitflippedHeaderRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, pos := range []int{0, 1, 4, 8} { // magic, version, layer count
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[pos] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("header corruption at byte %d accepted", pos)
		}
	}
}

func TestForwardRejectsWrongInputWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewMLP([]int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(NewMatrix(1, 3)); err == nil {
		t.Fatal("wrong input width: expected error")
	}
}

func TestTrainingIsFiniteProperty(t *testing.T) {
	// Gradients and parameters must remain finite through aggressive
	// updates on random data (Adam + clipping keep things sane).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := NewMLP([]int{3, 8, 2}, rng)
		if err != nil {
			return false
		}
		opt := NewAdam(0.1)
		opt.ClipNorm = 5
		for step := 0; step < 50; step++ {
			x := NewMatrix(4, 3)
			target := NewMatrix(4, 2)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64() * 10
			}
			for i := range target.Data {
				target.Data[i] = rng.NormFloat64() * 10
			}
			out, err := net.Forward(x)
			if err != nil {
				return false
			}
			_, grad, err := MSELoss(out, target)
			if err != nil {
				return false
			}
			net.ZeroGrad()
			if err := net.Backward(grad); err != nil {
				return false
			}
			if err := opt.Step(net.Params()); err != nil {
				return false
			}
		}
		for _, p := range net.Params() {
			for _, v := range p.Value.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
