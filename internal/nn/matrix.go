// Package nn is a small, dependency-free neural-network library built for
// the paper's DQN: row-major float64 matrices, fully-connected layers, ReLU
// activations, mean-squared-error loss, backpropagation, SGD and Adam
// optimizers, and binary model serialization.
//
// Go has no mature deep-learning framework in its standard ecosystem, so
// this package implements exactly the subset the paper's 4-layer
// fully-connected DQN needs, with numerical-gradient checks in the tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps a row vector (1 x n) around a copy of x.
func FromSlice(x []float64) *Matrix {
	m := NewMatrix(1, len(x))
	copy(m.Data, x)
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns row r as a fresh slice.
func (m *Matrix) Row(r int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// RowView returns row r as a subslice sharing m's backing array. Mutations
// through the view are visible in m, and the view is invalidated by anything
// that reallocates m's Data.
func (m *Matrix) RowView(r int) []float64 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Reshape resizes m to rows x cols in place, reusing the backing array when
// it has capacity. Element values are unspecified afterwards.
func (m *Matrix) Reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
}

// MatMul computes a @ b.
func MatMul(a, b *Matrix) (*Matrix, error) {
	out := NewMatrix(a.Rows, b.Cols)
	if err := MatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulInto computes a @ b into dst, reshaping dst (reusing its backing
// array when large enough). dst must not alias a or b. The kernel walks rows
// of a in ikj order so every inner loop streams over contiguous memory, and
// skips zero multiplicands (common with ReLU activations and one-hot state
// encodings).
func MatMulInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("nn: matmul shape mismatch (%dx%d)@(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	dst.Reshape(a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// Transpose returns m transposed.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// AddRowVector adds a 1 x Cols bias row to every row of m in place.
func (m *Matrix) AddRowVector(b *Matrix) error {
	if b.Rows != 1 || b.Cols != m.Cols {
		return fmt.Errorf("nn: bias shape (%dx%d) does not match %d cols", b.Rows, b.Cols, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += b.Data[j]
		}
	}
	return nil
}

// Scale multiplies every element in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// XavierInit fills m with Glorot-uniform values for a layer with the given
// fan-in and fan-out.
func (m *Matrix) XavierInit(fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MaxAbsDiff returns the largest element-wise absolute difference between
// two equally-shaped matrices.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("nn: shape mismatch (%dx%d) vs (%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var d float64
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d, nil
}
