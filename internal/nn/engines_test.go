package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Dual-engine equivalence harness for the float32 fast path, in the
// accelerated-engine-vs-reference-engine style: the float64 batched path is
// the reference, and the fast engine must track it within explicit
// tolerance budgets rather than bitwise. Three relations are pinned:
//
//   - fast asm vs fast scalar: same float32 accumulation order, so the only
//     difference is FMA's fused rounding — a tight ULP/absolute budget.
//   - fast (either kernel) vs exact float64: float32 quantization plus
//     accumulation error — a looser relative/absolute budget.
//   - exact asm vs exact scalar: bitwise, as everywhere else in the repo.

// Per-op tolerance budgets. tolFMA bounds asm-vs-scalar within the fast
// engine (fused-rounding drift only, compounded across layers); tolQuant
// bounds fast-vs-exact (weight/activation quantization dominates). The
// absolute floor covers ReLU-boundary elements where the reference is ~0 and
// relative error is meaningless.
const (
	fmaMaxULP  = 256  // single fused-dense op, asm vs scalar
	fmaAbsTol  = 1e-5 // ReLU-boundary floor for the ULP gate
	quantRel   = 5e-4 // fast vs exact float64
	quantAbs   = 5e-4
	deepFMARel = 1e-4 // asm vs scalar through a multi-layer net
	deepFMAAbs = 1e-5
)

// ulpDiff32 returns the distance between a and b in float32 representation
// order (half a ULP of difference in the last rounding shows up as 1).
func ulpDiff32(a, b float32) uint32 {
	ia := int64(orderedBits32(a))
	ib := int64(orderedBits32(b))
	d := ia - ib
	if d < 0 {
		d = -d
	}
	if d > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// orderedBits32 maps float32 bit patterns to a monotone integer scale so
// subtraction gives ULP distance across the zero boundary.
func orderedBits32(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x8000_0000 != 0 {
		return 0x8000_0000 - (b & 0x7fff_ffff)
	}
	return b + 0x8000_0000
}

// closeFMA asserts the tight asm-vs-scalar budget for a single fused op.
func closeFMA(got, want float32) bool {
	if got == want {
		return true
	}
	if math.Abs(float64(got)-float64(want)) <= fmaAbsTol {
		return true
	}
	return ulpDiff32(got, want) <= fmaMaxULP
}

// closeRel asserts |got-want| <= abs + rel*|want| against a float64
// reference.
func closeRel(got float32, want, rel, abs float64) bool {
	return math.Abs(float64(got)-want) <= abs+rel*math.Abs(want)
}

// forwardBatch32Scalar runs the fast engine entirely on the pure-Go kernel,
// regardless of CPU support and without touching package globals — the
// in-package reference for the fast path.
func forwardBatch32Scalar(q *Net32, x *Matrix32) *Matrix32 {
	cur := x
	for ui := range q.units {
		u := &q.units[ui]
		out := NewMatrix32(cur.Rows, u.out)
		dense32Scalar(out.Data, cur.Data, 0, cur.Rows, 0, u.out, u.in, u.out, u.w, u.bias, u.relu)
		cur = out
	}
	return cur
}

// exactForwardUnits runs the same fused units through float64 arithmetic as
// the exact-path reference for the quantization budget.
func exactForwardUnits(q *Net32, x *Matrix32) []float64 {
	cur := make([]float64, len(x.Data))
	for i, v := range x.Data {
		cur[i] = float64(v)
	}
	rows := x.Rows
	for ui := range q.units {
		u := &q.units[ui]
		next := make([]float64, rows*u.out)
		for r := 0; r < rows; r++ {
			for j := 0; j < u.out; j++ {
				acc := 0.0
				for kk := 0; kk < u.in; kk++ {
					acc += cur[r*u.in+kk] * float64(u.w[kk*u.out+j])
				}
				acc += float64(u.bias[j])
				if u.relu && !(acc > 0) {
					acc = 0
				}
				next[r*u.out+j] = acc
			}
		}
		cur = next
	}
	return cur
}

// randUnit builds one fused unit with mixed-sign weights and a zero-heavy
// bias so ReLU clamps actually fire.
func randUnit(rng *rand.Rand, in, out int, relu bool) unit32 {
	u := unit32{in: in, out: out, w: make([]float32, in*out), bias: make([]float32, out), relu: relu}
	for i := range u.w {
		u.w[i] = float32(rng.NormFloat64())
		if rng.Intn(4) == 0 {
			u.w[i] = 0
		}
	}
	for i := range u.bias {
		u.bias[i] = float32(rng.NormFloat64())
	}
	return u
}

func randBatch32(rng *rand.Rand, rows, cols int) *Matrix32 {
	x := NewMatrix32(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
		if rng.Intn(4) == 0 {
			x.Data[i] = 0
		}
	}
	return x
}

// TestDense32KernelShapeTails sweeps every row remainder around the 4-row
// microkernel block and every column tail around the 16-lane tile, with odd
// inner dims, asserting the asm path against the pure-Go kernel within the
// tight FMA budget, and that the non-asm path is bitwise the pure-Go kernel.
func TestDense32KernelShapeTails(t *testing.T) {
	if !useFMA {
		t.Skip("CPU lacks FMA; the noasm CI leg covers the fallback")
	}
	rng := rand.New(rand.NewSource(21))
	for _, rows := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33, 64} {
		for _, k := range []int{1, 2, 3, 5, 24, 47} {
			for _, cols := range []int{1, 3, 15, 16, 17, 31, 32, 33, 48, 160} {
				for _, relu := range []bool{false, true} {
					u := randUnit(rng, k, cols, relu)
					q := &Net32{units: []unit32{u}}
					x := randBatch32(rng, rows, k)

					want := forwardBatch32Scalar(q, x)

					got := NewMatrix32(0, 0)
					var s InferScratch32
					if err := q.ForwardBatch32(got, &s, x); err != nil {
						t.Fatalf("%dx%dx%d: %v", rows, k, cols, err)
					}
					for i := range want.Data {
						if !closeFMA(got.Data[i], want.Data[i]) {
							t.Fatalf("%dx%dx%d relu=%v asm element %d: %v vs scalar %v (%d ulps)",
								rows, k, cols, relu, i, got.Data[i], want.Data[i],
								ulpDiff32(got.Data[i], want.Data[i]))
						}
					}

					// The explicit fallback must be the pure-Go kernel, bitwise.
					fast32UseAsm = false
					fb := NewMatrix32(0, 0)
					err := q.ForwardBatch32(fb, &s, x)
					fast32UseAsm = useFMA
					if err != nil {
						t.Fatalf("%dx%dx%d fallback: %v", rows, k, cols, err)
					}
					for i := range want.Data {
						if math.Float32bits(fb.Data[i]) != math.Float32bits(want.Data[i]) {
							t.Fatalf("%dx%dx%d relu=%v fallback element %d: %v != %v",
								rows, k, cols, relu, i, fb.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestMatMulBatchFallbackShapeTails re-runs the exact engine's bitwise
// shape/tail sweep with the assembly microkernel disabled, so the pure-Go
// blocked path keeps its bit-identity contract even on machines where the
// default run takes the AVX path.
func TestMatMulBatchFallbackShapeTails(t *testing.T) {
	prev := useAVX
	useAVX = false
	defer func() { useAVX = prev }()

	rng := rand.New(rand.NewSource(23))
	fill := func(m *Matrix) {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
			if rng.Intn(4) == 0 {
				m.Data[i] = 0
			}
		}
	}
	for _, rows := range []int{1, 3, 4, 5, 7, 8, 9, 64} {
		for _, k := range []int{1, 3, 24, 47} {
			for _, cols := range []int{1, 3, 4, 5, 11, 48, 160} {
				a := NewMatrix(rows, k)
				b := NewMatrix(k, cols)
				fill(a)
				fill(b)
				got := NewMatrix(0, 0)
				if err := matMulBatchInto(got, a, b); err != nil {
					t.Fatalf("%dx%dx%d: %v", rows, k, cols, err)
				}
				want := NewMatrix(0, 0)
				if err := MatMulInto(want, a, b); err != nil {
					t.Fatalf("%dx%dx%d: %v", rows, k, cols, err)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%dx%dx%d element %d: %v != %v",
							rows, k, cols, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestForwardBatch32MatchesExact pins both fast-engine kernels to the exact
// float64 reference on the paper's network dims across batch sizes, within
// the quantization budget, and asm to scalar within the deep FMA budget.
func TestForwardBatch32MatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := net.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 3, 4, 5, 7, 8, 64, 100} {
		x64 := NewMatrix(batch, 24)
		x32 := NewMatrix32(batch, 24)
		for i := range x64.Data {
			v := float32(rng.NormFloat64())
			x32.Data[i] = v
			x64.Data[i] = float64(v) // identical inputs on both engines
		}

		var es InferScratch
		exact := NewMatrix(0, 0)
		if err := net.ForwardBatch(exact, &es, x64); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}

		var fs InferScratch32
		fast := NewMatrix32(0, 0)
		if err := q.ForwardBatch32(fast, &fs, x32); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		scalar := forwardBatch32Scalar(q, x32)

		for i := range exact.Data {
			if !closeRel(fast.Data[i], exact.Data[i], quantRel, quantAbs) {
				t.Fatalf("batch %d element %d: fast %v vs exact %v exceeds quant budget",
					batch, i, fast.Data[i], exact.Data[i])
			}
			if !closeRel(scalar.Data[i], exact.Data[i], quantRel, quantAbs) {
				t.Fatalf("batch %d element %d: scalar32 %v vs exact %v exceeds quant budget",
					batch, i, scalar.Data[i], exact.Data[i])
			}
			if !closeRel(fast.Data[i], float64(scalar.Data[i]), deepFMARel, deepFMAAbs) {
				t.Fatalf("batch %d element %d: asm %v vs scalar32 %v exceeds deep FMA budget",
					batch, i, fast.Data[i], scalar.Data[i])
			}
		}
	}
}

// TestFast32ReLUNegativeZero pins the ReLU sign convention on both kernels:
// a pre-activation of -0 (all-zero inputs, -0 bias) must come out as +0,
// matching the exact engine's `v > 0 ? v : 0`.
func TestFast32ReLUNegativeZero(t *testing.T) {
	cols := 32 // full 16-lane tiles so the asm path covers every column
	u := unit32{in: 4, out: cols, w: make([]float32, 4*cols), bias: make([]float32, cols), relu: true}
	negZero := math.Float32frombits(0x8000_0000)
	for j := range u.bias {
		u.bias[j] = negZero
	}
	q := &Net32{units: []unit32{u}}
	x := NewMatrix32(4, 4)

	check := func(name string, out *Matrix32) {
		for i, v := range out.Data {
			if v != 0 || math.Signbit(float64(v)) {
				t.Fatalf("%s element %d: ReLU(-0) = %v (signbit %v), want +0",
					name, i, v, math.Signbit(float64(v)))
			}
		}
	}
	var s InferScratch32
	out := NewMatrix32(0, 0)
	if err := q.ForwardBatch32(out, &s, x); err != nil {
		t.Fatal(err)
	}
	check("default", out)

	prev := fast32UseAsm
	fast32UseAsm = false
	out2 := NewMatrix32(0, 0)
	err := q.ForwardBatch32(out2, &s, x)
	fast32UseAsm = prev
	if err != nil {
		t.Fatal(err)
	}
	check("fallback", out2)
}

func TestQuantize32Rejections(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	if _, err := (&Network{}).Quantize32(); err == nil {
		t.Fatal("empty network: want error")
	}
	if _, err := (&Network{Layers: []Layer{&ReLU{}}}).Quantize32(); err == nil {
		t.Fatal("leading ReLU: want error")
	}
	net := &Network{Layers: []Layer{NewDense(4, 4, rng), &ReLU{}, &ReLU{}}}
	if _, err := net.Quantize32(); err == nil {
		t.Fatal("double ReLU: want error")
	}
}

func TestForwardBatch32DimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net, err := NewMLP([]int{8, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := net.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	var s InferScratch32
	if err := q.ForwardBatch32(NewMatrix32(0, 0), &s, NewMatrix32(2, 7)); err == nil {
		t.Fatal("want feature-count mismatch error")
	}
}

// TestForwardBatch32Concurrent drives one shared Net32 from several
// goroutines (own dst/scratch each); under -race this is the data-race proof
// for the immutable-snapshot claim, and results must be deterministic since
// every caller takes the same kernel path.
func TestForwardBatch32Concurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := net.Quantize32()
	if err != nil {
		t.Fatal(err)
	}
	x := randBatch32(rng, 8, 24)
	var s InferScratch32
	want := NewMatrix32(0, 0)
	if err := q.ForwardBatch32(want, &s, x); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s InferScratch32
			dst := NewMatrix32(0, 0)
			for iter := 0; iter < 50; iter++ {
				if err := q.ForwardBatch32(dst, &s, x); err != nil {
					errs <- err
					return
				}
				for i := range want.Data {
					if dst.Data[i] != want.Data[i] {
						errs <- errMismatch
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzForwardBatchEngines cross-checks all three engines on random shapes
// and weights: exact asm vs exact scalar bitwise, fast asm vs fast scalar
// within the FMA budget, and fast vs exact within the quantization budget.
func FuzzForwardBatchEngines(f *testing.F) {
	f.Add(int64(1), byte(4), byte(24), byte(48), byte(160))
	f.Add(int64(2), byte(1), byte(1), byte(0), byte(1))
	f.Add(int64(3), byte(5), byte(3), byte(17), byte(33))
	f.Add(int64(4), byte(64), byte(24), byte(0), byte(16))
	f.Add(int64(5), byte(7), byte(47), byte(31), byte(80))
	f.Fuzz(func(t *testing.T, seed int64, rowsB, kB, hiddenB, colsB byte) {
		rows := 1 + int(rowsB)%24
		k := 1 + int(kB)%40
		hidden := int(hiddenB) % 49 // 0 = single dense layer
		cols := 1 + int(colsB)%80
		rng := rand.New(rand.NewSource(seed))

		sizes := []int{k, cols}
		if hidden > 0 {
			sizes = []int{k, hidden, cols}
		}
		net, err := NewMLP(sizes, rng)
		if err != nil {
			t.Fatal(err)
		}
		q, err := net.Quantize32()
		if err != nil {
			t.Fatal(err)
		}

		x64 := NewMatrix(rows, k)
		x32 := NewMatrix32(rows, k)
		for i := range x64.Data {
			v := float32(rng.NormFloat64())
			if rng.Intn(4) == 0 {
				v = 0
			}
			x32.Data[i] = v
			x64.Data[i] = float64(v)
		}

		// Exact engine: asm (when available) and pure-Go paths, bitwise.
		var es InferScratch
		exact := NewMatrix(0, 0)
		if err := net.ForwardBatch(exact, &es, x64); err != nil {
			t.Fatal(err)
		}
		prevAVX := useAVX
		useAVX = false
		var es2 InferScratch
		exactScalar := NewMatrix(0, 0)
		err = net.ForwardBatch(exactScalar, &es2, x64)
		useAVX = prevAVX
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact.Data {
			if exact.Data[i] != exactScalar.Data[i] {
				t.Fatalf("exact engine diverged at %d: asm %v != scalar %v",
					i, exact.Data[i], exactScalar.Data[i])
			}
		}

		// Fast engine: whatever kernel this CPU selects, plus the pure-Go
		// reference.
		var fs InferScratch32
		fast := NewMatrix32(0, 0)
		if err := q.ForwardBatch32(fast, &fs, x32); err != nil {
			t.Fatal(err)
		}
		scalar := forwardBatch32Scalar(q, x32)
		for i := range fast.Data {
			if !closeRel(fast.Data[i], float64(scalar.Data[i]), deepFMARel, deepFMAAbs) {
				t.Fatalf("fast engine diverged at %d: asm %v vs scalar32 %v",
					i, fast.Data[i], scalar.Data[i])
			}
			if !closeRel(fast.Data[i], exact.Data[i], quantRel, quantAbs) {
				t.Fatalf("fast vs exact at %d: %v vs %v exceeds quant budget",
					i, fast.Data[i], exact.Data[i])
			}
		}
	})
}
