package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param) error
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR       float64
	ClipNorm float64 // 0 disables clipping
}

var _ Optimizer = (*SGD)(nil)

// Step applies one SGD update.
func (o *SGD) Step(params []*Param) error {
	if o.LR <= 0 {
		return fmt.Errorf("nn: sgd learning rate %v must be positive", o.LR)
	}
	scale := clipScale(params, o.ClipNorm)
	for _, p := range params {
		for i := range p.Value.Data {
			p.Value.Data[i] -= o.LR * scale * p.Grad.Data[i]
		}
	}
	return nil
}

// Adam implements the Adam optimizer (Kingma & Ba 2015) with bias
// correction and optional global-norm gradient clipping.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64

	step int
	m    map[*Param][]float64
	v    map[*Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with standard defaults for the
// unset coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (o *Adam) Step(params []*Param) error {
	if o.LR <= 0 {
		return fmt.Errorf("nn: adam learning rate %v must be positive", o.LR)
	}
	if o.m == nil {
		o.m = make(map[*Param][]float64, len(params))
		o.v = make(map[*Param][]float64, len(params))
	}
	o.step++
	scale := clipScale(params, o.ClipNorm)
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			o.v[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i] * scale
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
	return nil
}

// clipScale returns the multiplier that caps the global gradient norm at
// clipNorm (1 when clipping is disabled or unnecessary).
func clipScale(params []*Param, clipNorm float64) float64 {
	if clipNorm <= 0 {
		return 1
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clipNorm {
		return 1
	}
	return clipNorm / norm
}
