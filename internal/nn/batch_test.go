package nn

import (
	"math/rand"
	"sync"
	"testing"
)

func TestForwardBatchMatchesForwardBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 3, 4, 5, 7, 8, 64} {
		x := NewMatrix(batch, 24)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
			if rng.Intn(4) == 0 {
				x.Data[i] = 0 // exercise the zero-skip paths
			}
		}
		var scratch InferScratch
		got := NewMatrix(0, 0)
		if err := net.ForwardBatch(got, &scratch, x); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if got.Rows != batch || got.Cols != 160 {
			t.Fatalf("batch %d: got shape %dx%d", batch, got.Rows, got.Cols)
		}
		// Row-by-row reference through the training-path Forward.
		for r := 0; r < batch; r++ {
			row := NewMatrix(1, 24)
			copy(row.Data, x.Data[r*24:(r+1)*24])
			want, err := net.Forward(row)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 160; c++ {
				if got.At(r, c) != want.At(0, c) {
					t.Fatalf("batch %d row %d col %d: batch %v != serial %v",
						batch, r, c, got.At(r, c), want.At(0, c))
				}
			}
		}
	}
}

// TestMatMulBatchMatchesMatMulIntoBitwise pins the blocked kernel (and the
// AVX microkernel behind it on amd64) to the single-row reference across row
// remainders, column tails and zero-heavy operands.
func TestMatMulBatchMatchesMatMulIntoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	fill := func(m *Matrix) {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
			if rng.Intn(4) == 0 {
				m.Data[i] = 0
			}
		}
	}
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 64} {
		for _, k := range []int{1, 2, 3, 24, 48} {
			for _, cols := range []int{1, 2, 3, 4, 5, 7, 8, 11, 12, 48, 160} {
				a := NewMatrix(rows, k)
				b := NewMatrix(k, cols)
				fill(a)
				fill(b)
				got := NewMatrix(0, 0)
				if err := matMulBatchInto(got, a, b); err != nil {
					t.Fatalf("%dx%dx%d: %v", rows, k, cols, err)
				}
				want := NewMatrix(0, 0)
				if err := MatMulInto(want, a, b); err != nil {
					t.Fatalf("%dx%dx%d: %v", rows, k, cols, err)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%dx%dx%d element %d: %v != %v",
							rows, k, cols, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestForwardBatchDoesNotDisturbTrainingScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewMLP([]int{6, 8, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(1, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), out.Data...)

	// A batched inference call in between must leave the layer-owned forward
	// scratch (and thus a pending Backward) untouched.
	big := NewMatrix(16, 6)
	for i := range big.Data {
		big.Data[i] = rng.NormFloat64()
	}
	var scratch InferScratch
	dst := NewMatrix(0, 0)
	if err := net.ForwardBatch(dst, &scratch, big); err != nil {
		t.Fatal(err)
	}
	for i, v := range before {
		if out.Data[i] != v {
			t.Fatalf("training forward output disturbed at %d: %v != %v", i, out.Data[i], v)
		}
	}
}

func TestForwardBatchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(8, 24)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	var scratch InferScratch
	want := NewMatrix(0, 0)
	if err := net.ForwardBatch(want, &scratch, x); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s InferScratch
			dst := NewMatrix(0, 0)
			for iter := 0; iter < 50; iter++ {
				if err := net.ForwardBatch(dst, &s, x); err != nil {
					errs <- err
					return
				}
				for i := range want.Data {
					if dst.Data[i] != want.Data[i] {
						errs <- errMismatch
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errString("concurrent forward diverged")

type errString string

func (e errString) Error() string { return string(e) }
