//go:build !amd64

package nn

// Non-amd64 builds have no assembly microkernel; matMulBatchInto keeps to the
// portable blocked kernel, which computes identical bits.
var useAVX = false

func block4AVX(dst, a, b *float64, k, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func block8AVX(dst, a, b *float64, k, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func vecMaxZero(dst, src *float64, n4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func vecAddRows(dst, row *float64, rows, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}
