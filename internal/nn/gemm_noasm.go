//go:build !amd64 || noasm

package nn

// Builds without the assembly microkernel (non-amd64, or the noasm tag used
// by the CI fallback leg) keep matMulBatchInto on the portable blocked
// kernel, which computes identical bits.
var useAVX = false

func block4AVX(dst, a, b *float64, k, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func block8AVX(dst, a, b *float64, k, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func vecMaxZero(dst, src *float64, n4 int) {
	panic("nn: assembly kernel not available on this architecture")
}

func vecAddRows(dst, row *float64, rows, stride, cols4 int) {
	panic("nn: assembly kernel not available on this architecture")
}
