package nn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}) // 1x3
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{1, 4, 2, 5, 3, 6})
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{14, 32}
	for i := range want {
		if math.Abs(got.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("matmul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulShapeMismatch(t *testing.T) {
	if _, err := MatMul(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMatMulIntoReusesBuffer(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{1, 4, 2, 5, 3, 6})
	dst := NewMatrix(5, 5) // larger buffer; must be reshaped and reused
	backing := &dst.Data[0]
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.Rows != 1 || dst.Cols != 2 {
		t.Fatalf("dst reshaped to %dx%d, want 1x2", dst.Rows, dst.Cols)
	}
	if &dst.Data[0] != backing {
		t.Fatal("MatMulInto reallocated a sufficiently large buffer")
	}
	want := []float64{14, 32}
	for i := range want {
		if math.Abs(dst.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("matmulinto = %v, want %v", dst.Data, want)
		}
	}
	if err := MatMulInto(dst, NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestRowViewSharesBacking(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	v := m.RowView(1)
	if len(v) != 4 || v[0] != 4 || v[3] != 7 {
		t.Fatalf("RowView(1) = %v", v)
	}
	v[2] = -1
	if m.At(1, 2) != -1 {
		t.Fatal("RowView does not alias the matrix backing array")
	}
	if got := m.Row(1); got[2] != -1 {
		t.Fatalf("Row copy = %v, want the mutated values", got)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := NewMatrix(3, 4), NewMatrix(4, 5), NewMatrix(5, 2)
		for _, m := range []*Matrix{a, b, c} {
			for i := range m.Data {
				m.Data[i] = r.NormFloat64()
			}
		}
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		abc1, err := MatMul(ab, c)
		if err != nil {
			return false
		}
		bc, err := MatMul(b, c)
		if err != nil {
			return false
		}
		abc2, err := MatMul(a, bc)
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(abc1, abc2)
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMatrix(1+r.Intn(6), 1+r.Intn(6))
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		d, err := MaxAbsDiff(m.Transpose().Transpose(), m)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowVector(t *testing.T) {
	m := NewMatrix(2, 3)
	b := FromSlice([]float64{1, 2, 3})
	if err := m.AddRowVector(b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 3 {
		t.Fatalf("AddRowVector result %v", m.Data)
	}
	if err := m.AddRowVector(FromSlice([]float64{1})); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	copy(d.W.Value.Data, []float64{1, 2, 3, 4})
	copy(d.B.Value.Data, []float64{10, 20})
	y, err := d.Forward(FromSlice([]float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("forward = %v", y.Data)
	}
}

func TestDenseBackwardBeforeForward(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(2)))
	if _, err := d.Backward(NewMatrix(1, 2)); err == nil {
		t.Fatal("expected error")
	}
}

// numericalGradient perturbs every parameter element and measures the loss
// change, the gold standard for checking backprop.
func numericalGradient(t *testing.T, net *Network, x, target *Matrix, p *Param) []float64 {
	t.Helper()
	const h = 1e-6
	grads := make([]float64, len(p.Value.Data))
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		outP, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		lossP, _, err := MSELoss(outP, target)
		if err != nil {
			t.Fatal(err)
		}
		p.Value.Data[i] = orig - h
		outM, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		lossM, _, err := MSELoss(outM, target)
		if err != nil {
			t.Fatal(err)
		}
		p.Value.Data[i] = orig
		grads[i] = (lossP - lossM) / (2 * h)
	}
	return grads
}

func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewMLP([]int{4, 8, 8, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewMatrix(5, 4)
	target := NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range target.Data {
		target.Data[i] = rng.NormFloat64()
	}

	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := MSELoss(out, target)
	if err != nil {
		t.Fatal(err)
	}
	net.ZeroGrad()
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}

	for pi, p := range net.Params() {
		want := numericalGradient(t, net, x, target, p)
		for i := range want {
			if diff := math.Abs(p.Grad.Data[i] - want[i]); diff > 1e-5 {
				t.Fatalf("param %d element %d: backprop %v vs numerical %v",
					pi, i, p.Grad.Data[i], want[i])
			}
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := FromSlice([]float64{-1, 0, 2})
	y, err := r.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu forward = %v", y.Data)
	}
	g, err := r.Backward(FromSlice([]float64{5, 5, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 0 || g.Data[1] != 0 || g.Data[2] != 5 {
		t.Fatalf("relu backward = %v", g.Data)
	}
	if _, err := r.Backward(NewMatrix(1, 7)); err == nil {
		t.Fatal("expected mask size error")
	}
	// Input must not be mutated.
	if x.Data[0] != -1 {
		t.Fatal("relu mutated input")
	}
}

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewMLP([]int{3}, rng); err == nil {
		t.Fatal("expected error for single size")
	}
	if _, err := NewMLP([]int{3, 0}, rng); err == nil {
		t.Fatal("expected error for zero size")
	}
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 3 dense + 2 relu layers.
	if len(net.Layers) != 5 {
		t.Fatalf("layer count = %d, want 5", len(net.Layers))
	}
	want := 24*48 + 48 + 48*48 + 48 + 48*160 + 160
	if got := net.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestMSELoss(t *testing.T) {
	pred := FromSlice([]float64{1, 2})
	target := FromSlice([]float64{0, 2})
	loss, grad, err := MSELoss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-0.25) > 1e-12 {
		t.Fatalf("loss = %v, want 0.25", loss)
	}
	if math.Abs(grad.Data[0]-0.5) > 1e-12 || grad.Data[1] != 0 {
		t.Fatalf("grad = %v", grad.Data)
	}
	if _, _, err := MSELoss(pred, NewMatrix(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := NewMLP([]int{2, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := &SGD{LR: 0.05}
	x := NewMatrix(4, 2)
	copy(x.Data, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	target := NewMatrix(4, 1)
	copy(target.Data, []float64{0, 1, 1, 0}) // XOR
	var first, last float64
	for step := 0; step < 3000; step++ {
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		loss, grad, err := MSELoss(out, target)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrad()
		if err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(net.Params()); err != nil {
			t.Fatal(err)
		}
	}
	if last > first/10 {
		t.Fatalf("SGD failed to learn XOR: loss %v -> %v", first, last)
	}
}

func TestAdamLearnsFasterThanSGDOnRegression(t *testing.T) {
	train := func(opt Optimizer, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		net, err := NewMLP([]int{1, 16, 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := NewMatrix(16, 1)
		target := NewMatrix(16, 1)
		for i := 0; i < 16; i++ {
			v := float64(i)/8 - 1
			x.Data[i] = v
			target.Data[i] = math.Sin(3 * v)
		}
		var loss float64
		for step := 0; step < 500; step++ {
			out, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			var grad *Matrix
			loss, grad, err = MSELoss(out, target)
			if err != nil {
				t.Fatal(err)
			}
			net.ZeroGrad()
			if err := net.Backward(grad); err != nil {
				t.Fatal(err)
			}
			if err := opt.Step(net.Params()); err != nil {
				t.Fatal(err)
			}
		}
		return loss
	}
	adamLoss := train(NewAdam(0.01), 6)
	sgdLoss := train(&SGD{LR: 0.01}, 6)
	if adamLoss > sgdLoss {
		t.Fatalf("adam loss %v worse than sgd loss %v after 500 steps", adamLoss, sgdLoss)
	}
}

func TestOptimizerValidation(t *testing.T) {
	if err := (&SGD{LR: 0}).Step(nil); err == nil {
		t.Fatal("sgd lr=0: expected error")
	}
	if err := (&Adam{LR: -1}).Step(nil); err == nil {
		t.Fatal("adam lr<0: expected error")
	}
}

func TestGradientClipping(t *testing.T) {
	p := &Param{Value: FromSlice([]float64{0}), Grad: FromSlice([]float64{100})}
	opt := &SGD{LR: 1, ClipNorm: 1}
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	// With clipping to norm 1 the update is exactly -1.
	if math.Abs(p.Value.Data[0]+1) > 1e-12 {
		t.Fatalf("clipped update = %v, want -1", p.Value.Data[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := net.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.ParamCount() != net.ParamCount() {
		t.Fatal("clone parameter count differs")
	}
	// Mutating the original must not affect the clone.
	net.Params()[0].Value.Data[0] += 100
	if clone.Params()[0].Value.Data[0] == net.Params()[0].Value.Data[0] {
		t.Fatal("clone shares storage with original")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	x := FromSlice([]float64{1, -1, 0.5})
	ya, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MaxAbsDiff(ya, yb)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("outputs differ by %v after weight copy", d)
	}
	c, err := NewMLP([]int{3, 6, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("shape mismatch: expected error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, err := NewMLP([]int{4, 7, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != net.SerializedSize() {
		t.Fatalf("SerializedSize = %d, actual = %d", net.SerializedSize(), got)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := FromSlice([]float64{0.3, -0.7, 1.1, 0.0})
	y1, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MaxAbsDiff(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("loaded network output differs by %v", d)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("err = %v, want ErrBadModelFile", err)
	}
	if _, err := Load(bytes.NewReader(make([]byte, 64))); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("zeros: err = %v, want ErrBadModelFile", err)
	}

	// A dense layer whose dimensions are individually plausible but whose
	// product is terabyte-scale must be rejected before allocation (found
	// by FuzzCheckpointLoad: 0x40000 x 0x80000 = 2^37 float64s).
	var huge bytes.Buffer
	for _, v := range []uint32{modelMagic, modelVersion, 1, layerKindDense, 1 << 18, 1 << 19} {
		if err := binary.Write(&huge, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(&huge); !errors.Is(err, ErrBadModelFile) {
		t.Fatalf("huge shape: err = %v, want ErrBadModelFile", err)
	}
}

func TestPaperScaleModelSize(t *testing.T) {
	// The paper's model stores ~10664 floats in ~42.7 KB. Our default
	// DQN shape (3x8 inputs, two hidden layers, 16x10 outputs) lands in
	// the same order of magnitude.
	rng := rand.New(rand.NewSource(10))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := net.ParamCount()
	if params < 5000 || params > 20000 {
		t.Fatalf("param count %d far from the paper's 10664", params)
	}
	sizeKB := float64(net.SerializedSize()) / 1024
	if sizeKB < 30 || sizeKB > 160 {
		t.Fatalf("model size %.1f KB implausible", sizeKB)
	}
}

func BenchmarkForwardBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := NewMatrix(64, 24)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	net, err := NewMLP([]int{24, 48, 48, 160}, rng)
	if err != nil {
		b.Fatal(err)
	}
	opt := NewAdam(1e-3)
	x := NewMatrix(64, 24)
	target := NewMatrix(64, 160)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := net.Forward(x)
		if err != nil {
			b.Fatal(err)
		}
		_, grad, err := MSELoss(out, target)
		if err != nil {
			b.Fatal(err)
		}
		net.ZeroGrad()
		if err := net.Backward(grad); err != nil {
			b.Fatal(err)
		}
		if err := opt.Step(net.Params()); err != nil {
			b.Fatal(err)
		}
	}
}
