package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Serialization format: a small custom binary layout (magic, version, layer
// descriptors, float64 parameters, little endian). The paper reports its
// trained model as "a series of matrices ... 10664 float numbers with 42.7KB
// memory"; SerializedSize reports the equivalent figure for a network.

const (
	modelMagic   = 0x43544A4D // "CTJM"
	modelVersion = 1

	layerKindDense = 1
	layerKindReLU  = 2
)

// ErrBadModelFile is returned when decoding an invalid model stream.
var ErrBadModelFile = errors.New("nn: bad model file")

// Save writes the network architecture and parameters to w.
func (n *Network) Save(w io.Writer) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := write(uint32(modelMagic)); err != nil {
		return err
	}
	if err := write(uint32(modelVersion)); err != nil {
		return err
	}
	if err := write(uint32(len(n.Layers))); err != nil {
		return err
	}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			if err := write(uint32(layerKindDense)); err != nil {
				return err
			}
			if err := write(uint32(layer.W.Value.Rows)); err != nil {
				return err
			}
			if err := write(uint32(layer.W.Value.Cols)); err != nil {
				return err
			}
			for _, v := range layer.W.Value.Data {
				if err := write(math.Float64bits(v)); err != nil {
					return err
				}
			}
			for _, v := range layer.B.Value.Data {
				if err := write(math.Float64bits(v)); err != nil {
					return err
				}
			}
		case *ReLU:
			if err := write(uint32(layerKindReLU)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	return nil
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*Network, error) {
	var magic, version, nLayers uint32
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadModelFile, magic)
	}
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if version != modelVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModelFile, version)
	}
	if err := read(&nLayers); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if nLayers > 1024 {
		return nil, fmt.Errorf("%w: implausible layer count %d", ErrBadModelFile, nLayers)
	}
	net := &Network{}
	for li := uint32(0); li < nLayers; li++ {
		var kind uint32
		if err := read(&kind); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
		}
		switch kind {
		case layerKindDense:
			var rows, cols uint32
			if err := read(&rows); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
			}
			if err := read(&cols); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
			}
			// Bound the product, not just each dimension: two in-range
			// dimensions can still multiply to a terabyte-scale allocation,
			// and NewDense allocates before a truncated stream would fail.
			if rows == 0 || cols == 0 || uint64(rows)*uint64(cols) > 1<<24 {
				return nil, fmt.Errorf("%w: implausible dense shape %dx%d", ErrBadModelFile, rows, cols)
			}
			d := NewDense(int(rows), int(cols), rand.New(rand.NewSource(0)))
			for i := range d.W.Value.Data {
				var bitsv uint64
				if err := read(&bitsv); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
				}
				d.W.Value.Data[i] = math.Float64frombits(bitsv)
			}
			for i := range d.B.Value.Data {
				var bitsv uint64
				if err := read(&bitsv); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
				}
				d.B.Value.Data[i] = math.Float64frombits(bitsv)
			}
			net.Layers = append(net.Layers, d)
		case layerKindReLU:
			net.Layers = append(net.Layers, &ReLU{})
		default:
			return nil, fmt.Errorf("%w: unknown layer kind %d", ErrBadModelFile, kind)
		}
	}
	return net, nil
}

// SaveAdam writes an Adam optimizer's mutable state (step counter and first/
// second moment estimates) for the given parameter list. The encoding is
// order-sensitive: LoadAdam must be called with the same parameters in the
// same order, which Network.Params guarantees for an unchanged architecture.
func (o *Adam) SaveAdam(w io.Writer, params []*Param) error {
	write := func(v any) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := write(uint64(o.step)); err != nil {
		return err
	}
	if err := write(uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		n := len(p.Value.Data)
		if err := write(uint32(n)); err != nil {
			return err
		}
		for _, moments := range [2]map[*Param][]float64{o.m, o.v} {
			buf := moments[p] // nil before the first Step: encode zeros
			for i := 0; i < n; i++ {
				var x float64
				if buf != nil {
					x = buf[i]
				}
				if err := write(math.Float64bits(x)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// LoadAdam restores state written by SaveAdam into o, keyed to params (same
// list, same order as at save time).
func (o *Adam) LoadAdam(r io.Reader, params []*Param) error {
	read := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var step uint64
	if err := read(&step); err != nil {
		return fmt.Errorf("%w: adam step: %v", ErrBadModelFile, err)
	}
	if step > 1<<40 {
		return fmt.Errorf("%w: implausible adam step %d", ErrBadModelFile, step)
	}
	var nParams uint32
	if err := read(&nParams); err != nil {
		return fmt.Errorf("%w: adam param count: %v", ErrBadModelFile, err)
	}
	if int(nParams) != len(params) {
		return fmt.Errorf("%w: adam state has %d params, want %d", ErrBadModelFile, nParams, len(params))
	}
	m := make(map[*Param][]float64, len(params))
	v := make(map[*Param][]float64, len(params))
	for _, p := range params {
		var n uint32
		if err := read(&n); err != nil {
			return fmt.Errorf("%w: adam moment size: %v", ErrBadModelFile, err)
		}
		if int(n) != len(p.Value.Data) {
			return fmt.Errorf("%w: adam moment has %d values, param has %d", ErrBadModelFile, n, len(p.Value.Data))
		}
		for _, dst := range [2]map[*Param][]float64{m, v} {
			buf := make([]float64, n)
			for i := range buf {
				var bits uint64
				if err := read(&bits); err != nil {
					return fmt.Errorf("%w: adam moment: %v", ErrBadModelFile, err)
				}
				buf[i] = math.Float64frombits(bits)
			}
			dst[p] = buf
		}
	}
	o.step = int(step)
	o.m = m
	o.v = v
	return nil
}

// SerializedSize returns the byte size of the Save output without writing
// it anywhere.
func (n *Network) SerializedSize() int {
	size := 12 // magic + version + layer count
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			size += 4 + 8 // kind + shape
			size += 8 * (len(layer.W.Value.Data) + len(layer.B.Value.Data))
		default:
			size += 4
		}
	}
	return size
}
