package nn

import "fmt"

// Batched inference path. Forward (network.go) is the training path: each
// layer caches its input for Backward and owns the scratch its output lives
// in, so two goroutines can never share a network. ForwardBatch is the
// read-only counterpart: it touches nothing but the layer weights, keeps all
// intermediate activations in caller-supplied scratch, and computes the dense
// products with a 4-row register-blocked kernel so one pass over the weight
// matrix serves four samples. One network can therefore serve any number of
// concurrent ForwardBatch callers, each with its own dst and scratch.

// InferScratch holds the intermediate activation buffers for ForwardBatch.
// The zero value is ready to use; buffers grow on demand and are reused
// across calls. An InferScratch must not be shared between concurrent calls.
type InferScratch struct {
	a, b Matrix
}

// ForwardBatch evaluates the network on a batch (rows of x are samples),
// writing the output into dst. Unlike Forward it does not mutate the network
// or any layer scratch: it is safe to call concurrently from many goroutines
// on one network — each with its own dst and scratch — provided nothing is
// training the network at the same time.
//
// Results are bit-identical to Forward on the same rows as long as the
// weights and activations are finite (the kernels differ only in which exact
// zero multiplications they skip, which is observable only with Inf/NaN
// operands).
func (n *Network) ForwardBatch(dst *Matrix, s *InferScratch, x *Matrix) error {
	cur := x
	bufs := [2]*Matrix{&s.a, &s.b}
	idx := 0
	next := func(li int) *Matrix {
		if li == len(n.Layers)-1 {
			// The last layer writes straight into dst, saving a full
			// output-sized copy on large batches.
			return dst
		}
		m := bufs[idx]
		idx ^= 1
		return m
	}
	for li, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			out := next(li)
			if err := matMulBatchInto(out, cur, layer.W.Value); err != nil {
				return fmt.Errorf("nn: batch layer %d: %w", li, err)
			}
			if err := addRowVectorFast(out, layer.B.Value); err != nil {
				return fmt.Errorf("nn: batch layer %d: %w", li, err)
			}
			cur = out
		case *ReLU:
			out := next(li)
			out.Reshape(cur.Rows, cur.Cols)
			batchReLU(out.Data, cur.Data)
			cur = out
		default:
			return fmt.Errorf("nn: batch forward cannot evaluate layer type %T", l)
		}
	}
	if cur != dst {
		dst.Reshape(cur.Rows, cur.Cols)
		copy(dst.Data, cur.Data)
	}
	return nil
}

// matMulBatchInto computes a @ b into dst like MatMulInto, but processes four
// rows of a at a time so each streamed row of b is loaded once per four
// output rows and the inner loop keeps four independent accumulator streams
// in flight. On amd64 with AVX the 4-row block is computed by block4AVX
// (gemm_amd64.s), which additionally vectorizes four output columns per
// instruction. Per-output-element accumulation still runs in ascending k with
// a separate multiply and add rounding per step (the kernel never uses FMA),
// so for finite operands the result is bit-identical to MatMulInto (the
// single-row kernel skips every individual zero multiplicand, the blocked
// paths do not — a difference observable only with Inf/NaN in b). dst must
// not alias a or b.
func matMulBatchInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("nn: matmul shape mismatch (%dx%d)@(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	dst.Reshape(a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	k, n := a.Cols, b.Cols
	cols4 := 0
	if useAVX && k > 0 {
		// The AVX microkernels cover columns [0, cols4); they vectorize
		// across independent output columns with separate mul and add
		// roundings, so the bits match the scalar loops below.
		cols4 = n &^ 3
	}
	i := 0
	if cols4 > 0 {
		for ; i+8 <= a.Rows; i += 8 {
			block8AVX(&dst.Data[i*n], &a.Data[i*k], &b.Data[0], k, n, cols4)
			tailCols(dst, a, b, i, 8, cols4)
		}
	}
	for ; i+4 <= a.Rows; i += 4 {
		if cols4 > 0 {
			block4AVX(&dst.Data[i*n], &a.Data[i*k], &b.Data[0], k, n, cols4)
			tailCols(dst, a, b, i, 4, cols4)
			continue
		}
		a0 := a.Data[(i+0)*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		a2 := a.Data[(i+2)*k : (i+3)*k]
		a3 := a.Data[(i+3)*k : (i+4)*k]
		o0 := dst.Data[(i+0)*n : (i+1)*n]
		o1 := dst.Data[(i+1)*n : (i+2)*n]
		o2 := dst.Data[(i+2)*n : (i+3)*n]
		o3 := dst.Data[(i+3)*n : (i+4)*n]
		for kk := 0; kk < k; kk++ {
			v0, v1, v2, v3 := a0[kk], a1[kk], a2[kk], a3[kk]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				o0[j] += v0 * bv
				o1[j] += v1 * bv
				o2[j] += v2 * bv
				o3[j] += v3 * bv
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := dst.Data[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// batchReLU writes dst[i] = max(src[i], 0), vectorized where available. The
// AVX path uses VMAXPD with +0 as the tie/NaN-winning operand, which matches
// the scalar branch bit for bit (negatives, -0 and NaN all become +0).
func batchReLU(dst, src []float64) {
	i := 0
	if useAVX {
		if n4 := len(src) &^ 3; n4 > 0 {
			vecMaxZero(&dst[0], &src[0], n4)
			i = n4
		}
	}
	for ; i < len(src); i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// addRowVectorFast is Matrix.AddRowVector with the bulk of each row handled
// by the AVX kernel; element-wise adds vectorize without any bit change.
func addRowVectorFast(m, b *Matrix) error {
	if !useAVX || m.Rows == 0 || m.Cols&^3 == 0 {
		return m.AddRowVector(b)
	}
	if b.Rows != 1 || b.Cols != m.Cols {
		return fmt.Errorf("nn: bias shape (%dx%d) does not match %d cols", b.Rows, b.Cols, m.Cols)
	}
	cols4 := m.Cols &^ 3
	vecAddRows(&m.Data[0], &b.Data[0], m.Rows, m.Cols, cols4)
	for i := 0; cols4 < m.Cols && i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := cols4; j < m.Cols; j++ {
			row[j] += b.Data[j]
		}
	}
	return nil
}

// tailCols accumulates the columns [cols4, n) the vector kernels left
// untouched, for `rows` output rows starting at row i. Runs k ascending per
// element, so it composes with the kernels without changing any bits.
func tailCols(dst, a, b *Matrix, i, rows, cols4 int) {
	k, n := a.Cols, b.Cols
	if cols4 >= n {
		return
	}
	for r := i; r < i+rows; r++ {
		arow := a.Data[r*k : (r+1)*k]
		orow := dst.Data[r*n : (r+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := cols4; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}
