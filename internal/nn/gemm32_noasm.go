//go:build !amd64 || noasm

package nn

// Builds without the assembly kernels run the float32 fast path entirely on
// the pure-Go kernel in fast32.go; the tolerance contract is identical.
var useFMA = false

func dense32FMA4x16(dst, x, w, bias *float32, k, n, n16, relu int) {
	panic("nn: fma kernel not available in this build")
}
