//go:build amd64 && !noasm

package nn

// useFMA gates the float32 FMA microkernel in denseForward32. It is true
// when the CPU implements AVX and FMA3 and the OS saves YMM state on context
// switch (CPUID.1:ECX.FMA+OSXSAVE+AVX plus XCR0 XMM|YMM), checked once at
// init. When false the fast engine still works — every dense layer runs the
// pure-Go float32 kernel instead.
var useFMA = cpuSupportsFMA()

// cpuSupportsFMA reports whether AVX+FMA3 is usable (CPU + OS). Implemented
// in gemm32_amd64.s.
func cpuSupportsFMA() bool

// dense32FMA4x16 computes four rows of a fused dense layer: for four
// consecutive rows of x (row stride k values) it writes
// dst = x@w + bias (with ReLU when relu != 0) over columns [0, n16), where
// n16 %% 16 == 0 and n16 > 0, k > 0. dst and w share row stride n values.
// Each 16-column tile holds its eight accumulators in registers across the
// whole ascending-k loop (VFMADD231PS), then adds the bias and applies ReLU
// once before storing — the same per-element accumulation order as
// dense32Scalar, differing only by FMA's fused rounding at each step.
// Implemented in gemm32_amd64.s.
//
//go:noescape
func dense32FMA4x16(dst, x, w, bias *float32, k, n, n16, relu int)
