//go:build amd64 && !noasm

package nn

// useAVX gates the assembly microkernel in matMulBatchInto. It is true when
// the CPU implements AVX and the OS saves YMM state on context switch
// (CPUID.1:ECX.OSXSAVE+AVX plus XCR0 XMM|YMM), checked once at init.
var useAVX = cpuSupportsAVX()

// cpuSupportsAVX reports whether AVX is usable (CPU + OS). Implemented in
// gemm_amd64.s.
func cpuSupportsAVX() bool

// block4AVX accumulates a 4-row by cols4-column block of a GEMM: for four
// consecutive rows of a (row stride k values) it adds a@b into four
// consecutive rows of dst (row stride `stride` values, shared with b),
// covering columns [0, cols4) where cols4 %% 4 == 0. The k loop is outermost
// and ascending and every step is a separate VMULPD/VADDPD (never FMA), so
// each output element sees exactly the same sequence of IEEE-754 roundings as
// the scalar kernel: results are bit-identical for finite operands.
// Implemented in gemm_amd64.s.
//
//go:noescape
func block4AVX(dst, a, b *float64, k, stride, cols4 int)

// block8AVX is block4AVX for eight consecutive rows of a and dst: one sweep
// over b's rows serves eight output rows, halving weight-matrix streaming
// relative to the 4-row kernel on large batches. Same bit-identity contract.
// Implemented in gemm_amd64.s.
//
//go:noescape
func block8AVX(dst, a, b *float64, k, stride, cols4 int)

// vecMaxZero writes dst[i] = max(src[i], +0) for i in [0, n4), n4 %% 4 == 0.
// VMAXPD with +0 as the second source reproduces the scalar `v > 0 ? v : 0`
// exactly: negatives, -0 and NaN all map to +0, positives pass through.
// Implemented in gemm_amd64.s.
//
//go:noescape
func vecMaxZero(dst, src *float64, n4 int)

// vecAddRows adds the cols4-prefix (cols4 %% 4 == 0) of a row vector into
// each of `rows` rows of dst (row stride `stride` values): one IEEE add per
// element, bit-identical to the scalar loop in Matrix.AddRowVector.
// Implemented in gemm_amd64.s.
//
//go:noescape
func vecAddRows(dst, row *float64, rows, stride, cols4 int)
