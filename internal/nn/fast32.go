package nn

import "fmt"

// Float32 fast-path inference engine. The float64 batched path (batch.go)
// is the repo's exact reference: its kernels avoid FMA precisely so results
// stay bit-identical to the scalar loops, and every golden trace is pinned
// to it. This file is the opt-in counterpart for serving and batched eval,
// where the slot deadline matters more than the last bit: weights quantize
// once to float32 (half the memory traffic), and on amd64 with FMA the dense
// layers run on a 4-row x 16-lane VFMADD231PS microkernel with fused bias
// add and ReLU (gemm32_amd64.s). Where the kernel does not apply — tail rows
// and columns, CPUs without FMA, noasm builds — the pure-Go float32 kernel
// below computes the same ascending-k accumulation without fusing the
// multiply-add rounding.
//
// Nothing on this path is bit-identical to the exact engine, by design: the
// contract is the tolerance-gated dual-engine harness in engines_test.go
// (per-op error budgets against the float64 reference) plus the end-to-end
// policy-action agreement suites in internal/rl and internal/policy.

// Matrix32 is a dense row-major float32 matrix — the fast engine's
// counterpart of Matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zero float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Reshape resizes m to rows x cols in place, reusing the backing array when
// it has capacity. Element values are unspecified afterwards.
func (m *Matrix32) Reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
}

// unit32 is one fused inference stage of a quantized network: a dense layer
// (y = x@W + b) with its optional trailing ReLU folded in, so the microkernel
// writes activations once instead of re-walking the batch for the
// activation pass.
type unit32 struct {
	in, out int
	w       []float32 // in x out, row-major
	bias    []float32 // out
	relu    bool
}

// Net32 is an immutable float32 inference snapshot of a Network, built by
// Quantize32. It holds only quantized weights — no gradients, scratch or
// training state — and its forward pass touches nothing but caller-supplied
// buffers, so one Net32 may serve any number of concurrent ForwardBatch32
// callers.
type Net32 struct {
	units []unit32
}

// Quantize32 converts the network's weights to a float32 inference snapshot,
// fusing each Dense layer with its trailing ReLU. Conversion rounds every
// parameter to the nearest float32 (one half-ULP of relative error at
// float32 precision); the returned snapshot shares nothing with the network,
// which may keep training afterwards. Layer types the batched engine cannot
// evaluate, and ReLU layers that do not directly follow a Dense layer, are
// rejected.
func (n *Network) Quantize32() (*Net32, error) {
	var units []unit32
	for li, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			w, b := layer.W.Value, layer.B.Value
			u := unit32{
				in:   w.Rows,
				out:  w.Cols,
				w:    quantizeSlice(w.Data),
				bias: quantizeSlice(b.Data),
			}
			units = append(units, u)
		case *ReLU:
			if len(units) == 0 || units[len(units)-1].relu {
				return nil, fmt.Errorf("nn: quantize32: layer %d: ReLU does not follow a dense layer", li)
			}
			units[len(units)-1].relu = true
		default:
			return nil, fmt.Errorf("nn: quantize32 cannot convert layer type %T", l)
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("nn: quantize32: network has no dense layers")
	}
	return &Net32{units: units}, nil
}

// quantizeSlice rounds a float64 parameter slice to float32.
func quantizeSlice(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// InDim returns the feature-vector length the snapshot expects.
func (q *Net32) InDim() int { return q.units[0].in }

// OutDim returns the output width of the last layer.
func (q *Net32) OutDim() int { return q.units[len(q.units)-1].out }

// InferScratch32 holds the intermediate activation buffers for
// ForwardBatch32. The zero value is ready to use; buffers grow on demand and
// are reused across calls. An InferScratch32 must not be shared between
// concurrent calls.
type InferScratch32 struct {
	a, b Matrix32
}

// ForwardBatch32 evaluates the quantized network on a batch (rows of x are
// samples), writing the output into dst. Like the exact engine's
// ForwardBatch it mutates nothing but dst and scratch, so one Net32 safely
// serves any number of concurrent callers, each with its own dst and
// scratch. Results track the float64 reference within the tolerance budgets
// the dual-engine harness enforces; they are not bit-identical to it.
func (q *Net32) ForwardBatch32(dst *Matrix32, s *InferScratch32, x *Matrix32) error {
	if x.Cols != q.units[0].in {
		return fmt.Errorf("nn: fast32 batch has %d features, network wants %d", x.Cols, q.units[0].in)
	}
	cur := x
	bufs := [2]*Matrix32{&s.a, &s.b}
	idx := 0
	for ui := range q.units {
		u := &q.units[ui]
		out := dst
		if ui != len(q.units)-1 {
			out = bufs[idx]
			idx ^= 1
		}
		out.Reshape(cur.Rows, u.out)
		denseForward32(out, cur, u)
		cur = out
	}
	return nil
}

// fast32UseAsm gates the FMA microkernel inside denseForward32. It is a
// variable (initialized from the CPU check) so the dual-engine tests can
// exercise the pure-Go fallback on hardware that has FMA; outside tests it
// is never written.
var fast32UseAsm = useFMA

// denseForward32 computes dst = x@W + bias (with optional fused ReLU) for
// one quantized unit. The FMA microkernel covers 4-row blocks over the
// 16-lane column prefix; remainder rows and tail columns — and everything,
// when the CPU lacks FMA or the build is noasm — run the pure-Go float32
// kernel.
func denseForward32(dst, x *Matrix32, u *unit32) {
	m, k, n := x.Rows, u.in, u.out
	n16 := 0
	if fast32UseAsm && k > 0 {
		n16 = n &^ 15
	}
	i := 0
	if n16 > 0 {
		relu := 0
		if u.relu {
			relu = 1
		}
		for ; i+4 <= m; i += 4 {
			dense32FMA4x16(&dst.Data[i*n], &x.Data[i*k], &u.w[0], &u.bias[0], k, n, n16, relu)
		}
	}
	// Remainder rows take the scalar kernel across all columns; rows the
	// microkernel covered finish their column tail.
	dense32Scalar(dst.Data, x.Data, i, m, 0, n, k, n, u.w, u.bias, u.relu)
	if n16 < n {
		dense32Scalar(dst.Data, x.Data, 0, i, n16, n, k, n, u.w, u.bias, u.relu)
	}
}

// dense32Scalar is the pure-Go float32 dense kernel: for rows [rowLo, rowHi)
// and columns [colLo, colHi) it accumulates x@W in ascending k with float32
// arithmetic (separate multiply and add roundings — no FMA), adds the bias,
// and applies ReLU when asked. Per output element this is the same
// accumulation order as the microkernel, so the two differ only by the fused
// rounding FMA performs at each step.
func dense32Scalar(dst, x []float32, rowLo, rowHi, colLo, colHi, k, n int, w, bias []float32, relu bool) {
	for r := rowLo; r < rowHi; r++ {
		xrow := x[r*k : (r+1)*k]
		orow := dst[r*n : (r+1)*n]
		for j := colLo; j < colHi; j++ {
			orow[j] = 0
		}
		for kk, xv := range xrow {
			wrow := w[kk*n : (kk+1)*n]
			for j := colLo; j < colHi; j++ {
				orow[j] += xv * wrow[j]
			}
		}
		for j := colLo; j < colHi; j++ {
			v := orow[j] + bias[j]
			// Matches the microkernel's VMAXPS with +0: negatives and -0
			// both map to +0, positives pass through.
			if !(v > 0) && relu {
				v = 0
			}
			orow[j] = v
		}
	}
}
