package fault

import (
	"errors"
	"math"
	"testing"
)

func TestInjectorsAreDeterministic(t *testing.T) {
	inj := Chain{
		BurstNoise{Seed: 3, Prob: 0.2, Len: 4, Power: 25},
		AckLoss{Seed: 3, Prob: 0.1},
		ClockDrift{Seed: 3, Max: 0.05, Period: 10},
		SymbolFaults{Seed: 3, TruncProb: 0.2, MaxDrop: 8, FlipProb: 0.05},
	}
	for slot := int64(0); slot < 500; slot++ {
		var a, b Slot
		inj.Apply(slot, &a)
		inj.Apply(slot, &b)
		if a != b {
			t.Fatalf("slot %d: repeated application differs: %+v vs %+v", slot, a, b)
		}
	}
}

// Applying injectors out of order or restarting mid-sequence must not change
// any slot's faults — the property checkpoint/resume relies on.
func TestInjectorsAreStateless(t *testing.T) {
	inj := Chain{
		BurstNoise{Seed: 9, Prob: 0.3, Len: 8, Power: 30},
		AckLoss{Seed: 9, Prob: 0.2},
	}
	forward := make([]Slot, 200)
	for slot := range forward {
		inj.Apply(int64(slot), &forward[slot])
	}
	for slot := len(forward) - 1; slot >= 0; slot-- {
		var f Slot
		inj.Apply(int64(slot), &f)
		if f != forward[slot] {
			t.Fatalf("slot %d: reverse-order application differs", slot)
		}
	}
}

func TestBurstNoiseRate(t *testing.T) {
	b := BurstNoise{Seed: 1, Prob: 0.25, Len: 8, Power: 25}
	const slots = 80000
	noisy := 0
	for slot := int64(0); slot < slots; slot++ {
		var f Slot
		b.Apply(slot, &f)
		if f.NoisePower > 0 {
			noisy++
		}
	}
	rate := float64(noisy) / slots
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("burst rate %.3f far from configured 0.25", rate)
	}
	// Bursts must come in frames: count transitions; independent slots
	// would transition ~2*p*(1-p)*slots times, frames 1/Len as often.
	transitions := 0
	prev := false
	for slot := int64(0); slot < slots; slot++ {
		var f Slot
		b.Apply(slot, &f)
		on := f.NoisePower > 0
		if on != prev {
			transitions++
		}
		prev = on
	}
	indep := 2 * 0.25 * 0.75 * slots
	if float64(transitions) > indep/2 {
		t.Fatalf("%d transitions: bursts look independent (indep ~%.0f), not framed", transitions, indep)
	}
}

func TestAckLossRate(t *testing.T) {
	a := AckLoss{Seed: 2, Prob: 0.1}
	const slots = 50000
	lost := 0
	for slot := int64(0); slot < slots; slot++ {
		var f Slot
		a.Apply(slot, &f)
		if f.AckLoss {
			lost++
		}
	}
	rate := float64(lost) / slots
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("ack loss rate %.3f far from configured 0.1", rate)
	}
}

func TestClockDriftBoundedAndSmooth(t *testing.T) {
	d := ClockDrift{Seed: 4, Max: 0.05, Period: 20}
	var prev float64
	for slot := int64(0); slot < 5000; slot++ {
		var f Slot
		d.Apply(slot, &f)
		if math.Abs(f.ClockDrift) > d.Max {
			t.Fatalf("slot %d: drift %v exceeds max %v", slot, f.ClockDrift, d.Max)
		}
		if slot > 0 {
			// Piecewise-linear interpolation bounds the per-slot jump
			// by 2*Max/Period.
			if jump := math.Abs(f.ClockDrift - prev); jump > 2*d.Max/float64(d.Period)+1e-12 {
				t.Fatalf("slot %d: drift jump %v too abrupt", slot, jump)
			}
		}
		prev = f.ClockDrift
	}
}

func TestCorruptSymbols(t *testing.T) {
	stream := make([]uint8, 64)
	for i := range stream {
		stream[i] = uint8(i % 16)
	}

	// No faults: identical copy, input untouched.
	out := CorruptSymbols(Slot{}, 1, 0, stream)
	if len(out) != len(stream) {
		t.Fatalf("no-fault corruption changed length %d -> %d", len(stream), len(out))
	}
	for i := range out {
		if out[i] != stream[i] {
			t.Fatalf("no-fault corruption changed symbol %d", i)
		}
	}

	// Truncation drops trailing symbols; over-truncation clamps to empty.
	if out := CorruptSymbols(Slot{DropSymbols: 10}, 1, 0, stream); len(out) != 54 {
		t.Fatalf("truncated length %d, want 54", len(out))
	}
	if out := CorruptSymbols(Slot{DropSymbols: 1000}, 1, 0, stream); len(out) != 0 {
		t.Fatalf("over-truncated length %d, want 0", len(out))
	}

	// Flips change symbols, stay in [0,16), are deterministic, and never
	// produce an identical symbol at a flipped position.
	f := Slot{FlipProb: 0.5}
	a := CorruptSymbols(f, 7, 3, stream)
	b := CorruptSymbols(f, 7, 3, stream)
	flips := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip at %d not deterministic", i)
		}
		if a[i] > 15 {
			t.Fatalf("corrupted symbol %d out of range: %d", i, a[i])
		}
		if a[i] != stream[i] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("FlipProb=0.5 flipped nothing in 64 symbols")
	}
	if c := CorruptSymbols(f, 8, 3, stream); equalU8(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func equalU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseRoundTrip(t *testing.T) {
	inj, err := Parse("burst:p=0.1,len=4,power=30;ack:p=0.2;drift:max=0.02,period=25;symbols:trunc=0.1,drop=4,flip=0.02", 11)
	if err != nil {
		t.Fatal(err)
	}
	chain, ok := inj.(Chain)
	if !ok || len(chain) != 4 {
		t.Fatalf("got %T %v, want 4-element Chain", inj, inj)
	}
	if chain.Name() != "burst+ack+drift+symbols" {
		t.Fatalf("chain name %q", chain.Name())
	}
	if b := chain[0].(BurstNoise); b != (BurstNoise{Seed: 11, Prob: 0.1, Len: 4, Power: 30}) {
		t.Fatalf("burst parsed as %+v", b)
	}
	if d := chain[2].(ClockDrift); d != (ClockDrift{Seed: 11, Max: 0.02, Period: 25}) {
		t.Fatalf("drift parsed as %+v", d)
	}
}

func TestParseDefaultsAndSeedOverride(t *testing.T) {
	inj, err := Parse("ack", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a := inj.(AckLoss); a != (AckLoss{Seed: 5, Prob: 0.05}) {
		t.Fatalf("bare ack parsed as %+v", a)
	}
	inj, err = Parse("ack:seed=99,p=0.5", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a := inj.(AckLoss); a != (AckLoss{Seed: 99, Prob: 0.5}) {
		t.Fatalf("seed-override ack parsed as %+v", a)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if inj, err := Parse("", 1); err != nil || inj != nil {
		t.Fatalf("empty spec: %v %v", inj, err)
	}
	if inj, err := Parse("  ;  ", 1); err != nil || inj != nil {
		t.Fatalf("blank clauses: %v %v", inj, err)
	}
	for _, bad := range []string{
		"nope",
		"burst:p=2",
		"burst:len=0",
		"ack:p=-0.1",
		"drift:max=0.9",
		"symbols:drop=0",
		"ack:frequency=3",
		"burst:p",
		"ack:p=abc",
	} {
		if _, err := Parse(bad, 1); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("spec %q: got %v, want ErrBadSpec", bad, err)
		}
	}
}
