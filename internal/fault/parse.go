package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadSpec is returned (wrapped) by Parse for malformed fault specs.
var ErrBadSpec = errors.New("fault: bad injector spec")

// Parse builds an injector chain from a CLI spec. The grammar is
//
//	spec     := clause (';' clause)*
//	clause   := kind (':' key '=' value (',' key '=' value)*)?
//	kind     := "burst" | "ack" | "drift" | "symbols"
//
// for example
//
//	burst:p=0.05,len=8,power=25;ack:p=0.1;drift:max=0.02,period=50
//
// Unset keys take the defaults documented per kind below. seed seeds every
// injector that does not set its own seed= key; injectors of different kinds
// draw independent streams from the same seed. An empty spec returns a nil
// Injector (no faults).
//
// Defaults: burst p=0.05 len=8 power=25 | ack p=0.05 |
// drift max=0.01 period=50 | symbols trunc=0.05 drop=16 flip=0.01.
func Parse(spec string, seed int64) (Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var chain Chain
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, args, _ := strings.Cut(clause, ":")
		kind = strings.TrimSpace(kind)
		kv, err := parseArgs(args)
		if err != nil {
			return nil, fmt.Errorf("%w: clause %q: %v", ErrBadSpec, clause, err)
		}
		injSeed := seed
		if s, ok := kv["seed"]; ok {
			injSeed = int64(s)
			delete(kv, "seed")
		}
		var inj Injector
		switch kind {
		case "burst":
			inj = BurstNoise{
				Seed:  injSeed,
				Prob:  take(kv, "p", 0.05),
				Len:   int(take(kv, "len", 8)),
				Power: take(kv, "power", 25),
			}
		case "ack":
			inj = AckLoss{Seed: injSeed, Prob: take(kv, "p", 0.05)}
		case "drift":
			inj = ClockDrift{
				Seed:   injSeed,
				Max:    take(kv, "max", 0.01),
				Period: int(take(kv, "period", 50)),
			}
		case "symbols":
			inj = SymbolFaults{
				Seed:      injSeed,
				TruncProb: take(kv, "trunc", 0.05),
				MaxDrop:   int(take(kv, "drop", 16)),
				FlipProb:  take(kv, "flip", 0.01),
			}
		default:
			return nil, fmt.Errorf("%w: unknown kind %q (want burst, ack, drift or symbols)", ErrBadSpec, kind)
		}
		for k := range kv {
			return nil, fmt.Errorf("%w: unknown key %q for %q", ErrBadSpec, k, kind)
		}
		if err := validate(inj); err != nil {
			return nil, fmt.Errorf("%w: clause %q: %v", ErrBadSpec, clause, err)
		}
		chain = append(chain, inj)
	}
	if len(chain) == 0 {
		return nil, nil
	}
	if len(chain) == 1 {
		return chain[0], nil
	}
	return chain, nil
}

// parseArgs parses "k=v,k=v" into a map.
func parseArgs(args string) (map[string]float64, error) {
	kv := make(map[string]float64)
	args = strings.TrimSpace(args)
	if args == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("want key=value, got %q", pair)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("key %q: %v", k, err)
		}
		kv[strings.TrimSpace(k)] = x
	}
	return kv, nil
}

// take removes and returns kv[key], or def when absent.
func take(kv map[string]float64, key string, def float64) float64 {
	if v, ok := kv[key]; ok {
		delete(kv, key)
		return v
	}
	return def
}

// validate sanity-checks one injector's parameters.
func validate(inj Injector) error {
	switch v := inj.(type) {
	case BurstNoise:
		if v.Prob < 0 || v.Prob > 1 {
			return fmt.Errorf("burst p %v outside [0,1]", v.Prob)
		}
		if v.Len < 1 {
			return fmt.Errorf("burst len %d must be >= 1", v.Len)
		}
		if v.Power < 0 {
			return fmt.Errorf("burst power %v must be >= 0", v.Power)
		}
	case AckLoss:
		if v.Prob < 0 || v.Prob > 1 {
			return fmt.Errorf("ack p %v outside [0,1]", v.Prob)
		}
	case ClockDrift:
		if v.Max < 0 || v.Max >= 0.5 {
			return fmt.Errorf("drift max %v outside [0,0.5)", v.Max)
		}
		if v.Period < 1 {
			return fmt.Errorf("drift period %d must be >= 1", v.Period)
		}
	case SymbolFaults:
		if v.TruncProb < 0 || v.TruncProb > 1 {
			return fmt.Errorf("symbols trunc %v outside [0,1]", v.TruncProb)
		}
		if v.FlipProb < 0 || v.FlipProb > 1 {
			return fmt.Errorf("symbols flip %v outside [0,1]", v.FlipProb)
		}
		if v.MaxDrop < 1 {
			return fmt.Errorf("symbols drop %d must be >= 1", v.MaxDrop)
		}
	}
	return nil
}
