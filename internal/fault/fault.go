// Package fault provides deterministic, seed-controlled fault injectors for
// the jamming environment and the field simulator: burst noise on top of the
// jammer, receiver-side symbol truncation/corruption, receiver clock / CCA
// timing drift, and ACK loss.
//
// Every injector is a pure function of (seed, slot index): no injector keeps
// mutable state between slots. This counter-based design has two load-bearing
// consequences. First, fault schedules are bit-identical at any worker count
// and across interleavings, like the rest of the experiment harness. Second,
// fault injection composes with checkpoint/resume for free — a resumed run
// recomputes exactly the impairments the uninterrupted run would have seen,
// with nothing extra to snapshot.
package fault

import (
	"fmt"
	"math"
)

// Slot collects the impairments injectors have scheduled for one time slot.
// The zero value means "no fault".
type Slot struct {
	// NoisePower is the power of a broadband burst-noise interferer active
	// on the victim's channel this slot (0 = quiet). It duels with the
	// victim's transmit power exactly like a jamming emission.
	NoisePower float64
	// AckLoss marks the slot's acknowledgement channel as lost: data may
	// reach the hub, but the transmitter never learns it.
	AckLoss bool
	// ClockDrift is the fractional receiver clock / CCA timing error for
	// this slot (+0.02 = timing runs 2% slow, stretching overhead and
	// per-packet service times).
	ClockDrift float64
	// DropSymbols truncates this many trailing symbols from any symbol
	// stream feeding the ZigBee receiver this slot.
	DropSymbols int
	// FlipProb is the per-symbol corruption probability applied to symbol
	// streams feeding the ZigBee receiver this slot.
	FlipProb float64
}

// Injector folds impairments for a slot into a Slot descriptor. Apply must be
// a pure function of (receiver state, slot): implementations derive all
// randomness from their configured seed and the slot index.
type Injector interface {
	// Name identifies the injector for logs and flag round-trips.
	Name() string
	// Apply folds this injector's impairments for the given slot into f.
	Apply(slot int64, f *Slot)
}

// Chain applies a sequence of injectors in order.
type Chain []Injector

// Name implements Injector.
func (c Chain) Name() string {
	out := ""
	for i, inj := range c {
		if i > 0 {
			out += "+"
		}
		out += inj.Name()
	}
	return out
}

// Apply implements Injector.
func (c Chain) Apply(slot int64, f *Slot) {
	for _, inj := range c {
		inj.Apply(slot, f)
	}
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixing
// function used to derive per-slot randomness from (seed, slot, tag).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash mixes a seed, a slot counter and a per-injector tag into one 64-bit
// value. Distinct tags give independent streams from the same seed.
func hash(seed, slot int64, tag uint64) uint64 {
	h := splitmix64(uint64(seed) ^ tag)
	return splitmix64(h ^ splitmix64(uint64(slot)))
}

// unit maps a 64-bit hash onto [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Per-injector tags (arbitrary distinct constants).
const (
	tagBurst   = 0xB0457
	tagAck     = 0xACC
	tagDrift   = 0xD81F7
	tagSymbols = 0x57AB5
)

// BurstNoise schedules broadband noise bursts independent of the jammer. Time
// is divided into frames of Len slots; each frame is independently a burst
// with probability Prob, and every slot of a burst frame sees an interferer
// of the configured Power. Mean burst length is therefore Len slots and the
// long-run fraction of noisy slots is Prob.
type BurstNoise struct {
	// Seed drives the burst schedule.
	Seed int64
	// Prob is the per-frame burst probability in [0, 1].
	Prob float64
	// Len is the burst frame length in slots (>= 1).
	Len int
	// Power is the interferer power during a burst, on the same scale as
	// the victim's and jammer's power levels.
	Power float64
}

// Name implements Injector.
func (b BurstNoise) Name() string { return "burst" }

// Apply implements Injector.
func (b BurstNoise) Apply(slot int64, f *Slot) {
	frameLen := int64(b.Len)
	if frameLen < 1 {
		frameLen = 1
	}
	frame := slot / frameLen
	if unit(hash(b.Seed, frame, tagBurst)) < b.Prob && b.Power > f.NoisePower {
		f.NoisePower = b.Power
	}
}

// AckLoss drops each slot's acknowledgement independently with probability
// Prob.
type AckLoss struct {
	// Seed drives the loss schedule.
	Seed int64
	// Prob is the per-slot ACK loss probability in [0, 1].
	Prob float64
}

// Name implements Injector.
func (a AckLoss) Name() string { return "ack" }

// Apply implements Injector.
func (a AckLoss) Apply(slot int64, f *Slot) {
	if unit(hash(a.Seed, slot, tagAck)) < a.Prob {
		f.AckLoss = true
	}
}

// ClockDrift models a slowly wandering receiver clock / CCA timing error.
// The drift is piecewise linear: one target value per Period-slot frame is
// drawn uniformly from [-Max, +Max], and slots interpolate linearly between
// consecutive frame targets, giving a smooth, bounded, stateless trajectory.
type ClockDrift struct {
	// Seed drives the drift trajectory.
	Seed int64
	// Max bounds the absolute fractional drift (e.g. 0.02 = ±2%).
	Max float64
	// Period is the frame length in slots between fresh drift targets.
	Period int
}

// Name implements Injector.
func (d ClockDrift) Name() string { return "drift" }

// target returns the drift target for one frame.
func (d ClockDrift) target(frame int64) float64 {
	return (2*unit(hash(d.Seed, frame, tagDrift)) - 1) * d.Max
}

// Apply implements Injector.
func (d ClockDrift) Apply(slot int64, f *Slot) {
	period := int64(d.Period)
	if period < 1 {
		period = 1
	}
	frame := slot / period
	frac := float64(slot%period) / float64(period)
	drift := d.target(frame)*(1-frac) + d.target(frame+1)*frac
	f.ClockDrift += drift
}

// SymbolFaults corrupts the demodulated symbol stream feeding the ZigBee
// receiver: with probability TruncProb a slot's stream loses up to MaxDrop
// trailing symbols (sample truncation), and every symbol is independently
// replaced by a random value with probability FlipProb.
type SymbolFaults struct {
	// Seed drives truncation and corruption.
	Seed int64
	// TruncProb is the per-slot probability of a truncation event.
	TruncProb float64
	// MaxDrop bounds the symbols dropped by one truncation event (>= 1
	// when TruncProb > 0).
	MaxDrop int
	// FlipProb is the per-symbol corruption probability.
	FlipProb float64
}

// Name implements Injector.
func (s SymbolFaults) Name() string { return "symbols" }

// Apply implements Injector.
func (s SymbolFaults) Apply(slot int64, f *Slot) {
	h := hash(s.Seed, slot, tagSymbols)
	if unit(h) < s.TruncProb {
		maxDrop := s.MaxDrop
		if maxDrop < 1 {
			maxDrop = 1
		}
		drop := 1 + int(splitmix64(h)%uint64(maxDrop))
		if drop > f.DropSymbols {
			f.DropSymbols = drop
		}
	}
	if s.FlipProb > f.FlipProb {
		f.FlipProb = s.FlipProb
	}
}

// CorruptSymbols applies a Slot's receiver-side impairments (truncation, then
// per-symbol corruption) to a demodulated ZigBee symbol stream (values 0..15)
// and returns the corrupted copy. The input is never modified. Corruption is
// deterministic in (seed, slot, position): the i-th symbol of a slot is
// always flipped — or not — the same way.
func CorruptSymbols(f Slot, seed, slot int64, stream []uint8) []uint8 {
	return CorruptSymbolsInto(nil, f, seed, slot, stream)
}

// CorruptSymbolsInto is CorruptSymbols writing into dst's backing array when
// it is large enough, so a caller corrupting one packet after another (the
// field simulator's faulted receive path) reuses a single scratch buffer
// instead of allocating per packet. The returned slice holds the corrupted
// stream; dst may be nil.
func CorruptSymbolsInto(dst []uint8, f Slot, seed, slot int64, stream []uint8) []uint8 {
	n := len(stream) - f.DropSymbols
	if n < 0 {
		n = 0
	}
	var out []uint8
	if cap(dst) >= n {
		out = dst[:n]
	} else {
		out = make([]uint8, n)
	}
	copy(out, stream[:n])
	if f.FlipProb > 0 {
		for i := range out {
			h := hash(seed, slot, tagSymbols^splitmix64(uint64(i)+1))
			if unit(h) < f.FlipProb {
				// Replace with a uniformly random *different* symbol so a
				// corruption always changes the stream.
				delta := 1 + uint8(splitmix64(h)%15)
				out[i] = (out[i] + delta) % 16
			}
		}
	}
	return out
}

// Scoped derives an independent fault stream per hopping cluster from one
// shared injector spec: every Apply sees the underlying injector at a slot
// counter offset by Stream·2³², so cluster schedules never overlap while
// slot-to-slot structure (burst frames, drift interpolation) is preserved
// within each cluster. Stream 0 is the identity scope: a 1-cluster engine
// reproduces the unscoped injector bit-for-bit.
type Scoped struct {
	// Inner is the shared injector being scoped.
	Inner Injector
	// Stream is the cluster index (>= 0).
	Stream int64
}

// Name implements Injector.
func (s Scoped) Name() string {
	if s.Stream == 0 {
		return s.Inner.Name()
	}
	return fmt.Sprintf("%s@%d", s.Inner.Name(), s.Stream)
}

// Apply implements Injector.
func (s Scoped) Apply(slot int64, f *Slot) {
	s.Inner.Apply(slot+s.Stream<<32, f)
}

// MeanDrift reports the expected absolute clock drift of a ClockDrift
// injector over one full period, useful for sanity checks in tests.
func (d ClockDrift) MeanDrift() float64 { return math.Abs(d.Max) / 2 }
