package ctjam

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ctjam/internal/ckpt"
)

// TestCheckpointRotationResume covers the generational checkpoint store:
// with Keep set, -checkpoint is a directory of ckpt-NNNNNN.ctdq files, GC
// retains only the newest Keep generations, and resume falls back past a
// corrupt newest generation — still finishing bit-identical to a run that
// never stopped.
func TestCheckpointRotationResume(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	const slots = 3000

	full, err := TrainDQNWithOptions(cfg, slots, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: dir, CheckpointEvery: 500, Keep: 2, StopAfter: 1700,
	}); err != nil {
		t.Fatal(err)
	}

	// Generations were written at 500, 1000, 1500 and 1700; GC must have
	// pruned down to the newest two.
	entries, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 retained generations, found %d: %+v", len(entries), entries)
	}
	if entries[0].Slot != 1500 || entries[1].Slot != 1700 {
		t.Fatalf("unexpected generations: %+v", entries)
	}

	// Corrupt the newest generation; resume must fall back to slot 1500.
	if err := os.WriteFile(entries[1].Path, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: dir, CheckpointEvery: 500, Keep: 2, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := full.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed network differs from uninterrupted run")
	}

	// The completed run checkpointed its final state too, and GC kept the
	// directory bounded.
	entries, err = ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Fatalf("GC left %d generations, want <= 2: %+v", len(entries), entries)
	}
}

// TestCheckpointRotationAllCorrupt: when every retained generation is
// unreadable, resume must fail loudly rather than silently restart.
func TestCheckpointRotationAllCorrupt(t *testing.T) {
	cfg := DefaultConfig()
	const slots = 2000
	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: dir, CheckpointEvery: 500, Keep: 2, StopAfter: 1200,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(e.Path, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := TrainDQNWithOptions(cfg, slots, TrainOptions{
		Checkpoint: dir, CheckpointEvery: 500, Keep: 2, Resume: true,
	}); err == nil {
		t.Fatal("expected an error when no generation is usable")
	}
}

// TestEvaluateBatchMatchesSerial pins the facade's batched evaluation to the
// serial Evaluate it replaces: same per-env seeds, same metrics, bitwise.
func TestEvaluateBatchMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	const (
		k     = 4
		slots = 1500
	)
	mdpPolicy, err := SolveMDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemePassive, SchemeRandom, SchemeStatic, SchemeMDP} {
		var pol *Policy
		if scheme == SchemeMDP {
			pol = mdpPolicy
		}
		batch, err := EvaluateBatch(cfg, scheme, pol, k, slots)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if len(batch) != k {
			t.Fatalf("%s: got %d metrics for %d envs", scheme, len(batch), k)
		}
		for i := 0; i < k; i++ {
			ci := cfg
			ci.Seed = cfg.Seed + int64(i)
			serial, err := Evaluate(ci, scheme, pol, slots)
			if err != nil {
				t.Fatalf("%s env %d: %v", scheme, i, err)
			}
			if batch[i] != serial {
				t.Fatalf("%s env %d: batch %+v != serial %+v", scheme, i, batch[i], serial)
			}
		}
	}
}
