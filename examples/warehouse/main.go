// Smart-warehouse scenario: the paper's motivating deployment — a dense
// heterogeneous IoT installation where a ZigBee sensor network shares the
// 2.4 GHz band with Wi-Fi equipment, one of which turns hostile.
//
// This example runs the discrete-event field simulator with a larger star
// network (8 shelf-sensor nodes reporting to a hub over 2 s slots) and
// compares the anti-jamming schemes' goodput, both against a slot-aligned
// jammer and against a fast-sweeping one.
//
// Run with:
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"time"

	"ctjam"
)

func main() {
	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerRandom // a stealthy attacker hiding its power

	policy, err := ctjam.SolveMDP(cfg)
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name    string
		jamSlot time.Duration
	}{
		{"aligned jammer (2s)", 2 * time.Second},
		{"fast jammer (0.5s)", 500 * time.Millisecond},
	}
	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n", sc.name)
		results, err := ctjam.FieldCompare(cfg,
			[]ctjam.Scheme{ctjam.SchemePassive, ctjam.SchemeRandom, ctjam.SchemeMDP},
			policy,
			ctjam.FieldOptions{
				Nodes:        8,
				SlotDuration: 2 * time.Second,
				JammerSlot:   sc.jamSlot,
				Slots:        300,
				UseCSMA:      true, // 8 contending sensors: model the real MAC
			},
			true /* include no-jammer reference */)
		if err != nil {
			log.Fatal(err)
		}
		baseline := results[len(results)-1].GoodputPktsPerSlot
		for _, r := range results {
			fmt.Printf("  %-10s goodput %5.0f pkts/slot (%5.1f%% of clean), ST %5.1f%%\n",
				r.Scheme, r.GoodputPktsPerSlot,
				100*r.GoodputPktsPerSlot/baseline, 100*r.ST)
		}
		fmt.Println()
	}
	fmt.Println("the hybrid FH+PC policy keeps the warehouse reporting even under attack;")
	fmt.Println("passive recovery loses most of its slots to the wide-band CTJ jammer")
}
