// Policy exploration: the §III-B structure of the optimal defense.
//
// The paper proves the optimal stay/hop decision is a threshold in n (the
// number of consecutive safe slots on the current channel), and that the
// threshold n* falls as the jamming loss L_J grows, rises with the hopping
// loss L_H, and rises with the jammer's sweep cycle. This example solves
// the MDP across those parameters and prints the thresholds, making the
// theorems visible.
//
// Run with:
//
//	go run ./examples/policyexplore
package main

import (
	"fmt"
	"log"

	"ctjam"
)

func main() {
	base := ctjam.DefaultConfig()
	base.Jammer = ctjam.JammerRandom

	fmt.Println("Theorem III.5: threshold n* vs the jamming loss L_J")
	for _, lj := range []float64{20, 40, 60, 100, 200, 400} {
		cfg := base
		cfg.LossJam = lj
		report(cfg, fmt.Sprintf("L_J=%3.0f", lj))
	}

	fmt.Println("\nTheorem III.5: threshold n* vs the hopping loss L_H")
	for _, lh := range []float64{0, 25, 50, 100, 200} {
		cfg := base
		cfg.LossHop = lh
		report(cfg, fmt.Sprintf("L_H=%3.0f", lh))
	}

	fmt.Println("\nTheorem III.5: threshold n* vs the sweep cycle ceil(K/m)")
	for _, sw := range []struct{ channels, width int }{
		{16, 8}, {16, 4}, {16, 2}, {32, 2},
	} {
		cfg := base
		cfg.Channels = sw.channels
		cfg.SweepWidth = sw.width
		cycle := (sw.channels + sw.width - 1) / sw.width
		report(cfg, fmt.Sprintf("cycle=%2d", cycle))
	}
}

func report(cfg ctjam.Config, label string) {
	a, err := ctjam.AnalyzeMDP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	structure := "threshold policy"
	if !a.IsThreshold {
		structure = "NOT a threshold policy (!)"
	}
	fmt.Printf("  %s  n*=%d  (%s; Qstay %s, Qhop %s)\n",
		label, a.Threshold, structure, trend(a.QStay), trend(a.QHop))
}

func trend(xs []float64) string {
	if len(xs) < 2 {
		return "flat"
	}
	if xs[len(xs)-1] >= xs[0] {
		return "increasing"
	}
	return "decreasing"
}
