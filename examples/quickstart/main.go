// Quickstart: defend a ZigBee network against a cross-technology jammer.
//
// This example trains the paper's DQN anti-jamming policy in the slot-level
// simulator, compares it against the passive and random baselines, and
// prints the Table I metrics — the minimal end-to-end use of the library.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ctjam"
)

func main() {
	cfg := ctjam.DefaultConfig() // K=16 channels, max-power jammer, L_J=100
	const (
		trainSlots = 20000
		evalSlots  = 10000
	)

	fmt.Printf("training the DQN anti-jamming policy (%d slots)...\n", trainSlots)
	policy, err := ctjam.TrainDQN(cfg, trainSlots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d network parameters\n\n", policy.ParamCount())

	schemes := []struct {
		scheme ctjam.Scheme
		policy *ctjam.Policy
	}{
		{ctjam.SchemeRL, policy},
		{ctjam.SchemePassive, nil},
		{ctjam.SchemeRandom, nil},
		{ctjam.SchemeStatic, nil},
	}
	fmt.Printf("%-9s %7s %7s %7s\n", "scheme", "ST%", "AH%", "AP%")
	for _, s := range schemes {
		m, err := ctjam.Evaluate(cfg, s.scheme, s.policy, evalSlots)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %7.1f %7.1f %7.1f\n", s.scheme, 100*m.ST, 100*m.AH, 100*m.AP)
	}
	fmt.Println("\npaper: the RL scheme sustains ~78% successful slots under the CTJ attack")
}
