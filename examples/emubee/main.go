// EmuBee: build the cross-technology jamming waveform of §II-A.
//
// A Wi-Fi device cannot transmit arbitrary samples — everything it emits
// passes through scrambling, convolutional coding, interleaving, 64-QAM and
// OFDM. This example inverts that chain to find the Wi-Fi payload bits whose
// transmission *looks like* a ZigBee signal, using the paper's optimized
// constellation scaling (Eq. 1-2), and verifies a ZigBee correlation
// receiver decodes the emitted waveform.
//
// Run with:
//
//	go run ./examples/emubee
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ctjam"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	symbols := make([]uint8, 24)
	for i := range symbols {
		symbols[i] = uint8(rng.Intn(16))
	}
	fmt.Printf("target ZigBee symbols (%d): %v\n\n", len(symbols), symbols)

	optimized, err := ctjam.EmulateZigBee(symbols, true)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := ctjam.EmulateZigBee(symbols, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("emulation quality (paper's optimization vs prior naive designs):")
	fmt.Printf("  %-26s %12s %12s\n", "", "optimized", "naive")
	fmt.Printf("  %-26s %12.3f %12.3f\n", "alpha (Eq. 2)", optimized.Alpha, naive.Alpha)
	fmt.Printf("  %-26s %12.1f %12.1f\n", "E(alpha) (Eq. 1)", optimized.QuantError, naive.QuantError)
	fmt.Printf("  %-26s %12.3f %12.3f\n", "EVM vs designed", optimized.EVM, naive.EVM)
	fmt.Printf("  %-26s %9d/%-3d %9d/%-3d\n", "symbol errors at victim",
		optimized.SymbolErrors, optimized.Symbols, naive.SymbolErrors, naive.Symbols)

	improvement := naive.QuantError / optimized.QuantError
	fmt.Printf("\nthe optimized quantization cuts E(alpha) by %.1fx: the full 64-QAM\n", improvement)
	fmt.Println("constellation is exploited instead of its native unit scale.")
	fmt.Printf("\nthe %d-bit Wi-Fi payload regenerates the waveform through any stock\n",
		len(optimized.WiFiPayloadBits))
	fmt.Println("802.11g transmitter — the jamming attack needs no special hardware.")
}
