package ctjam

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultConfigIsValid(t *testing.T) {
	if _, err := DefaultConfig().internal(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jammer = "sneaky"
	if _, err := cfg.internal(); err == nil {
		t.Fatal("bad jammer mode: expected error")
	}
	cfg = DefaultConfig()
	cfg.PowerLevels = 0
	if _, err := cfg.internal(); err == nil {
		t.Fatal("0 power levels: expected error")
	}
	cfg = DefaultConfig()
	cfg.Channels = 1
	if _, err := cfg.internal(); err == nil {
		t.Fatal("1 channel: expected error")
	}
}

func TestEvaluateBaselines(t *testing.T) {
	cfg := DefaultConfig()
	for _, scheme := range []Scheme{SchemePassive, SchemeRandom, SchemeStatic} {
		m, err := Evaluate(cfg, scheme, nil, 3000)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if m.Slots != 3000 {
			t.Fatalf("%s: slots = %d", scheme, m.Slots)
		}
		if m.ST < 0 || m.ST > 1 {
			t.Fatalf("%s: ST = %v", scheme, m.ST)
		}
	}
}

func TestEvaluateUnknownScheme(t *testing.T) {
	if _, err := Evaluate(DefaultConfig(), "quantum", nil, 100); err == nil {
		t.Fatal("expected error")
	}
}

func TestEvaluateRLWithoutPolicy(t *testing.T) {
	if _, err := Evaluate(DefaultConfig(), SchemeRL, nil, 100); err == nil {
		t.Fatal("expected error when policy missing")
	}
}

func TestSolveMDPAndEvaluate(t *testing.T) {
	cfg := DefaultConfig()
	policy, err := SolveMDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if policy.ParamCount() != 0 {
		t.Fatal("exact policy should report 0 network parameters")
	}
	m, err := Evaluate(cfg, SchemeMDP, policy, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if m.ST < 0.7 {
		t.Fatalf("MDP policy ST = %.3f, expected ~0.78", m.ST)
	}
	// Exact policies are not persistable.
	var buf bytes.Buffer
	if err := policy.Save(&buf); err == nil {
		t.Fatal("saving an exact policy should fail")
	}
}

func TestTrainDQNSaveLoadEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("DQN training is slow")
	}
	cfg := DefaultConfig()
	policy, err := TrainDQN(cfg, 12000)
	if err != nil {
		t.Fatal(err)
	}
	if policy.ParamCount() == 0 {
		t.Fatal("trained policy has no parameters")
	}
	var buf bytes.Buffer
	if err := policy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := TrainDQN(cfg, 1) // fresh agent, minimal training
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(cfg, SchemeRL, restored, 5000)
	if err != nil {
		t.Fatal(err)
	}
	passive, err := Evaluate(cfg, SchemePassive, nil, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if m.ST <= passive.ST {
		t.Fatalf("restored DQN ST %.3f should beat passive %.3f", m.ST, passive.ST)
	}
}

func TestFieldCompare(t *testing.T) {
	cfg := DefaultConfig()
	policy, err := SolveMDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := FieldCompare(cfg,
		[]Scheme{SchemePassive, SchemeRandom, SchemeMDP}, policy,
		FieldOptions{Slots: 200}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// Ordering: passive < random < mdp < no-jammer.
	for i := 1; i < len(results); i++ {
		if results[i].GoodputPktsPerSlot <= results[i-1].GoodputPktsPerSlot {
			t.Fatalf("ordering violated at %d: %+v", i, results)
		}
	}
	if results[3].Scheme != "no-jammer" {
		t.Fatalf("last result = %+v", results[3])
	}
}

func TestEmulateZigBee(t *testing.T) {
	symbols := []uint8{0, 5, 10, 15, 7, 8}
	opt, err := EmulateZigBee(symbols, true)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EmulateZigBee(symbols, false)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Alpha <= 0 || naive.Alpha != 1 {
		t.Fatalf("alphas: opt=%v naive=%v", opt.Alpha, naive.Alpha)
	}
	if opt.QuantError > naive.QuantError {
		t.Fatalf("optimized quantization error %v worse than naive %v", opt.QuantError, naive.QuantError)
	}
	if frac := float64(opt.SymbolErrors) / float64(opt.Symbols); frac > 0.34 {
		t.Fatalf("emulated waveform symbol error rate %.2f too high", frac)
	}
	if len(opt.Wave) == 0 || len(opt.WiFiPayloadBits) == 0 {
		t.Fatal("emulation missing waveform or bits")
	}
	if _, err := EmulateZigBee(nil, true); err == nil {
		t.Fatal("empty symbols: expected error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 25 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	desc, err := DescribeExperiment("fig11a")
	if err != nil || desc == "" {
		t.Fatalf("DescribeExperiment: %q, %v", desc, err)
	}
}

func TestRunExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "fig10b", ScaleQuick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig10b") || !strings.Contains(out, "utilization") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if err := RunExperiment(&buf, "not-a-figure", ScaleQuick); err == nil {
		t.Fatal("unknown experiment: expected error")
	}
}

func TestRunExperimentsSharedCache(t *testing.T) {
	// The batch facade shares one sweep-point cache: fig6a and fig7a sweep
	// the same points, so the pair must cost barely more than one panel and
	// produce exactly the per-id outputs, separated by a blank line.
	var a, b, two bytes.Buffer
	if err := RunExperiment(&a, "fig6a", ScaleQuick); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiment(&b, "fig7a", ScaleQuick); err != nil {
		t.Fatal(err)
	}
	if err := RunExperiments(&two, []string{"fig6a", "fig7a"}, ScaleQuick); err != nil {
		t.Fatal(err)
	}
	want := a.String() + "\n" + b.String()
	if two.String() != want {
		t.Fatalf("batched output differs from per-id runs:\ngot:\n%s\nwant:\n%s", two.String(), want)
	}
	if err := RunExperiments(&two, []string{"fig6a", "nope"}, ScaleQuick); err == nil {
		t.Fatal("unknown experiment in batch: expected error")
	}
}

func TestTrainQLearningAndEvaluate(t *testing.T) {
	cfg := DefaultConfig()
	policy, err := TrainQLearning(cfg, 15000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(cfg, SchemeQLearning, policy, 8000)
	if err != nil {
		t.Fatal(err)
	}
	passive, err := Evaluate(cfg, SchemePassive, nil, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if m.ST <= passive.ST {
		t.Fatalf("Q-learning ST %.3f should beat passive %.3f", m.ST, passive.ST)
	}
	if _, err := Evaluate(cfg, SchemeQLearning, nil, 100); err == nil {
		t.Fatal("missing policy: expected error")
	}
}

func TestFieldCompareCSMA(t *testing.T) {
	cfg := DefaultConfig()
	policy, err := SolveMDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := FieldCompare(cfg, []Scheme{SchemeMDP}, policy,
		FieldOptions{Slots: 80, UseCSMA: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].GoodputPktsPerSlot <= 0 {
		t.Fatal("CSMA field run delivered nothing")
	}
}
