package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden simulation trace")

// The full CLI scenario — flag parsing through scheme evaluation — must stay
// bit-identical at a fixed seed. Regenerate with
//
//	go test ./cmd/ctjam-sim -update
func TestGoldenSimScenario(t *testing.T) {
	rows, err := simulate([]string{
		"-slots", "2000",
		"-schemes", "mdp,passive,random,static",
		"-seed", "3",
		"-fault", "burst:p=0.1,power=30;ack:p=0.02",
		"-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", "sim.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("simulation drifted from golden trace %s.\ngot:\n%s\nwant:\n%s\nRun with -update if the change is intended.",
			path, got, want)
	}
}
