package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-slots", "800", "-schemes", "passive,static"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMDPScheme(t *testing.T) {
	if err := run([]string{"-slots", "500", "-schemes", "mdp", "-mode", "random"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelSchemes(t *testing.T) {
	if err := run([]string{"-slots", "500", "-schemes", "passive,random,static", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-schemes", "quantum"}); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
}
