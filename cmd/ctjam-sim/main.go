// Command ctjam-sim evaluates anti-jamming schemes in the slot-level
// jamming environment and prints the paper's Table I metrics for each.
//
// Usage:
//
//	ctjam-sim [-slots 20000] [-mode max|random] [-lj 100] [-lh 50]
//	          [-schemes mdp,passive,random,static] [-workers N] [-seed 1]
//
// Schemes are independent (each builds its own policy and environment), so
// they fan out over -workers goroutines; rows still print in the requested
// order and are bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctjam"
	"ctjam/internal/parallel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-sim", flag.ContinueOnError)
	var (
		slots   = fs.Int("slots", 20000, "evaluation slots")
		mode    = fs.String("mode", "max", "jammer power mode: 'max' or 'random'")
		lj      = fs.Float64("lj", 100, "loss of a successful jam (L_J)")
		lh      = fs.Float64("lh", 50, "loss of a frequency hop (L_H)")
		schemes = fs.String("schemes", "mdp,passive,random,static", "comma-separated schemes")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker goroutines across schemes (0 = all cores, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerMode(*mode)
	cfg.LossJam = *lj
	cfg.LossHop = *lh
	cfg.Seed = *seed

	names := strings.Split(*schemes, ",")
	// Every scheme builds its own policy and environment from cfg, so the
	// evaluations are independent; collect into per-scheme slots and print
	// in the requested order.
	rows, err := parallel.Map(*workers, len(names), func(p int) (ctjam.Metrics, error) {
		scheme := ctjam.Scheme(strings.TrimSpace(names[p]))
		var policy *ctjam.Policy
		var err error
		switch scheme {
		case ctjam.SchemeMDP:
			policy, err = ctjam.SolveMDP(cfg)
		case ctjam.SchemeRL:
			policy, err = ctjam.TrainDQN(cfg, 30000)
		}
		if err != nil {
			return ctjam.Metrics{}, err
		}
		return ctjam.Evaluate(cfg, scheme, policy, *slots)
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %8s %8s %8s %8s %8s %8s\n",
		"scheme", "ST%", "AH%", "SH%", "AP%", "SP%", "jam%")
	for p, name := range names {
		m := rows[p]
		fmt.Printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			ctjam.Scheme(strings.TrimSpace(name)), 100*m.ST, 100*m.AH, 100*m.SH, 100*m.AP, 100*m.SP, 100*m.JamRate)
	}
	return nil
}
