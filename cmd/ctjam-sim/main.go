// Command ctjam-sim evaluates anti-jamming schemes in the slot-level
// jamming environment and prints the paper's Table I metrics for each.
//
// Usage:
//
//	ctjam-sim [-slots 20000] [-mode max|random] [-jammer SPEC] [-lj 100]
//	          [-lh 50] [-schemes mdp,passive,random,static] [-workers N]
//	          [-seed 1] [-fault SPEC]
//
// Schemes are independent (each builds its own policy and environment), so
// they fan out over -workers goroutines; rows still print in the requested
// order and are bit-identical at any worker count.
//
// -jammer selects the attacker's hopping strategy from the jammer zoo, e.g.
// "reactive:delay=2,miss=0.1", "adaptive", or "budget:duty=0.5,over=(sweep)"
// (see the jammer package for the grammar); empty keeps the paper's §II-C
// sweeper.
//
// -fault injects deterministic channel faults during evaluation, e.g.
// "burst:p=0.1,power=30;ack:p=0.02" (see the fault package for the grammar).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctjam"
	"ctjam/internal/parallel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-sim:", err)
		os.Exit(1)
	}
}

// schemeRow is one output row: a scheme name plus its evaluation metrics.
type schemeRow struct {
	Scheme  ctjam.Scheme
	Metrics ctjam.Metrics
}

// simulate parses args, runs the requested evaluations and returns the rows
// in request order. Split from run so tests can golden-check the rows
// without scraping stdout.
func simulate(args []string) ([]schemeRow, error) {
	fs := flag.NewFlagSet("ctjam-sim", flag.ContinueOnError)
	var (
		slots   = fs.Int("slots", 20000, "evaluation slots")
		mode    = fs.String("mode", "max", "jammer power mode: 'max' or 'random'")
		jam     = fs.String("jammer", "", "jammer strategy spec (empty = the paper's sweeper)")
		lj      = fs.Float64("lj", 100, "loss of a successful jam (L_J)")
		lh      = fs.Float64("lh", 50, "loss of a frequency hop (L_H)")
		schemes = fs.String("schemes", "mdp,passive,random,static", "comma-separated schemes")
		seed    = fs.Int64("seed", 1, "random seed")
		faults  = fs.String("fault", "", "fault injection spec, e.g. 'burst:p=0.1,power=30;ack:p=0.02'")
		workers = fs.Int("workers", 0, "worker goroutines across schemes (0 = all cores, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerMode(*mode)
	cfg.JammerSpec = *jam
	cfg.LossJam = *lj
	cfg.LossHop = *lh
	cfg.Seed = *seed
	cfg.FaultSpec = *faults

	names := strings.Split(*schemes, ",")
	// Every scheme builds its own policy and environment from cfg, so the
	// evaluations are independent; collect into per-scheme slots and return
	// in the requested order.
	rows, err := parallel.Map(*workers, len(names), func(p int) (schemeRow, error) {
		scheme := ctjam.Scheme(strings.TrimSpace(names[p]))
		var policy *ctjam.Policy
		var err error
		switch scheme {
		case ctjam.SchemeMDP:
			policy, err = ctjam.SolveMDP(cfg)
		case ctjam.SchemeRL:
			policy, err = ctjam.TrainDQN(cfg, 30000)
		}
		if err != nil {
			return schemeRow{}, err
		}
		m, err := ctjam.Evaluate(cfg, scheme, policy, *slots)
		if err != nil {
			return schemeRow{}, err
		}
		return schemeRow{Scheme: scheme, Metrics: m}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func run(args []string) error {
	rows, err := simulate(args)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %8s\n",
		"scheme", "ST%", "AH%", "SH%", "AP%", "SP%", "jam%")
	for _, row := range rows {
		m := row.Metrics
		fmt.Printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			row.Scheme, 100*m.ST, 100*m.AH, 100*m.SH, 100*m.AP, 100*m.SP, 100*m.JamRate)
	}
	return nil
}
