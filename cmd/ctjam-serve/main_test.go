package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/rl"
)

const (
	testStateDim = 6
	testActions  = 4
)

// writeLearnerFile saves a small random-weight DQN learner state (CTDQ) and
// returns the learner for reference decisions.
func writeLearnerFile(t *testing.T, path string, seed int64) *rl.DQN {
	t.Helper()
	cfg := rl.DefaultDQNConfig(testStateDim, testActions)
	cfg.Hidden = []int{8}
	cfg.Seed = seed
	d, err := rl.NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return d
}

func randStates(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, testStateDim)
		for j := range out[i] {
			out[i][j] = rng.Float64()*2 - 1
		}
	}
	return out
}

func postDecide(t *testing.T, url string, req decideRequest) (decideResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out decideResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

func TestServeDecideMatchesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ctdq")
	learner := writeLearnerFile(t, path, 7)
	snap, err := learner.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	srv, err := newServer(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(1))
	states := randStates(rng, 9)
	flat := make([]float64, 0, len(states)*testStateDim)
	for _, s := range states {
		flat = append(flat, s...)
	}
	want := make([]int, len(states))
	if err := snap.GreedyBatch(want, flat); err != nil {
		t.Fatal(err)
	}

	// Single-state form.
	out, resp := postDecide(t, ts.URL, decideRequest{State: states[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single decide status %d", resp.StatusCode)
	}
	if out.Action == nil || *out.Action != want[0] {
		t.Fatalf("single action = %v, want %d", out.Action, want[0])
	}

	// Batch form, with Q values.
	out, resp = postDecide(t, ts.URL, decideRequest{States: states, QValues: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch decide status %d", resp.StatusCode)
	}
	if len(out.Actions) != len(states) {
		t.Fatalf("got %d actions, want %d", len(out.Actions), len(states))
	}
	for i, a := range out.Actions {
		if a != want[i] {
			t.Fatalf("action %d = %d, want %d", i, a, want[i])
		}
	}
	if len(out.Q) != len(states) || len(out.Q[0]) != testActions {
		t.Fatalf("q shape %dx%d, want %dx%d", len(out.Q), len(out.Q[0]), len(states), testActions)
	}
	qWant := make([]float64, len(states)*testActions)
	if err := snap.QValuesBatch(qWant, flat); err != nil {
		t.Fatal(err)
	}
	for i := range states {
		for j := 0; j < testActions; j++ {
			if out.Q[i][j] != qWant[i*testActions+j] {
				t.Fatalf("q[%d][%d] = %v, want %v", i, j, out.Q[i][j], qWant[i*testActions+j])
			}
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ctdq")
	writeLearnerFile(t, path, 1)
	srv, err := newServer(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	cases := []decideRequest{
		{},                            // neither state nor states
		{State: []float64{1, 2}},      // wrong dimension
		{States: [][]float64{{1, 2}}}, // wrong dimension in batch
		{State: make([]float64, testStateDim), States: randStates(rand.New(rand.NewSource(2)), 1)}, // both
	}
	for i, req := range cases {
		if _, resp := postDecide(t, ts.URL, req); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/decide"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET decide status %d, want 405", resp.StatusCode)
	}

	var stats map[string]any
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["errors"].(float64) < float64(len(cases)) {
		t.Fatalf("stats errors = %v, want >= %d", stats["errors"], len(cases))
	}
}

func TestServeHealthzAndHotSwap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ctdq")
	writeLearnerFile(t, path, 7)
	srv, err := newServer(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var health map[string]any
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status %v", health["status"])
	}
	if int(health["state_dim"].(float64)) != testStateDim || int(health["num_actions"].(float64)) != testActions {
		t.Fatalf("healthz dims %v x %v", health["state_dim"], health["num_actions"])
	}
	if int(health["reloads"].(float64)) != 1 {
		t.Fatalf("healthz reloads %v, want 1 (initial load)", health["reloads"])
	}

	// Swap in different weights and reload via the endpoint.
	other := writeLearnerFile(t, path, 99)
	otherSnap, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}

	states := randStates(rand.New(rand.NewSource(3)), 5)
	flat := make([]float64, 0, len(states)*testStateDim)
	for _, s := range states {
		flat = append(flat, s...)
	}
	want := make([]int, len(states))
	if err := otherSnap.GreedyBatch(want, flat); err != nil {
		t.Fatal(err)
	}
	out, resp2 := postDecide(t, ts.URL, decideRequest{States: states})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload decide status %d", resp2.StatusCode)
	}
	for i, a := range out.Actions {
		if a != want[i] {
			t.Fatalf("post-reload action %d = %d, want %d (new weights)", i, a, want[i])
		}
	}

	// A corrupt file must fail the reload and keep the old snapshot serving.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("reload of garbage succeeded")
	}
	if _, resp := postDecide(t, ts.URL, decideRequest{States: states}); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide after failed reload: status %d", resp.StatusCode)
	}
}

// TestServeConcurrentDecideAndReload exercises the snapshot hot-swap under
// the race detector: decides and reloads interleave freely.
func TestServeConcurrentDecideAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ctdq")
	writeLearnerFile(t, path, 7)
	srv, err := newServer(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				if _, resp := postDecide(t, ts.URL, decideRequest{States: randStates(rng, 3)}); resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: decide status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
}

// TestServeLoadsAllCheckpointFormats proves one server binary consumes every
// artifact the training pipeline produces: CTJM (Policy.Save), CTDQ
// (rl.SaveState) and CTTC (SaveTraining).
func TestServeLoadsAllCheckpointFormats(t *testing.T) {
	dir := t.TempDir()

	// CTDQ is covered above; build CTJM and CTTC from a real core agent.
	acfg := core.DefaultDQNAgentConfig(16, 10, 4)
	acfg.Hidden = []int{16}
	agent, err := core.NewDQNAgent(acfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := env.DefaultConfig()
	e, err := env.New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(e, 50); err != nil {
		t.Fatal(err)
	}

	ctjm := filepath.Join(dir, "model.ctjm")
	var buf bytes.Buffer
	if err := agent.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ctjm, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cttc := filepath.Join(dir, "train.ctdq")
	buf.Reset()
	if err := agent.SaveTraining(&buf, e, core.TrainingCursor{Slot: 50}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cttc, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{ctjm, cttc} {
		srv, err := newServer(path)
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(path), err)
		}
		snap := srv.snap.Load()
		if snap.StateDim() != 3*acfg.HistoryLen || snap.NumActions() != acfg.Channels*acfg.Powers {
			t.Fatalf("%s: dims %dx%d", filepath.Base(path), snap.StateDim(), snap.NumActions())
		}
		ts := httptest.NewServer(srv.handler())
		state := make([]float64, snap.StateDim())
		out, resp := postDecide(t, ts.URL, decideRequest{State: state})
		ts.Close()
		if resp.StatusCode != http.StatusOK || out.Action == nil {
			t.Fatalf("%s: decide status %d action %v", filepath.Base(path), resp.StatusCode, out.Action)
		}
	}
}

func TestServeMissingModel(t *testing.T) {
	if _, err := newServer(filepath.Join(t.TempDir(), "nope.ctdq")); err == nil {
		t.Fatal("missing model: expected error")
	}
}
