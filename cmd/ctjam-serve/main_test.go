package main

import (
	"testing"

	"ctjam/internal/serve"
)

func TestParseModelSpecs(t *testing.T) {
	cases := []struct {
		name   string
		legacy string
		fast   bool
		lists  []string
		want   []serve.ModelSpec
		bad    bool
	}{
		{
			name:   "legacy only",
			legacy: "m.ctdq",
			want:   []serve.ModelSpec{{Name: "default", Path: "m.ctdq"}},
		},
		{
			name:   "legacy fast",
			legacy: "m.ctdq",
			fast:   true,
			want:   []serve.ModelSpec{{Name: "default", Path: "m.ctdq", Fast: true}},
		},
		{
			name:  "fast suffix",
			lists: []string{"a=a.ctdq:fast,b=b.ctjm"},
			want: []serve.ModelSpec{
				{Name: "a", Path: "a.ctdq", Fast: true},
				{Name: "b", Path: "b.ctjm"},
			},
		},
		{
			name:  "fast suffix strips only the marker",
			lists: []string{"a=dir/x=y.ctdq:fast"},
			want:  []serve.ModelSpec{{Name: "a", Path: "dir/x=y.ctdq", Fast: true}},
		},
		{
			name:  "named list",
			lists: []string{"a=a.ctdq,b=b.ctjm"},
			want: []serve.ModelSpec{
				{Name: "a", Path: "a.ctdq"},
				{Name: "b", Path: "b.ctjm"},
			},
		},
		{
			name:  "repeated flag",
			lists: []string{"a=a.ctdq", "b=b.ctjm"},
			want: []serve.ModelSpec{
				{Name: "a", Path: "a.ctdq"},
				{Name: "b", Path: "b.ctjm"},
			},
		},
		{
			name:   "legacy first then named",
			legacy: "m.ctdq",
			lists:  []string{"sweeper=s.ctdq"},
			want: []serve.ModelSpec{
				{Name: "default", Path: "m.ctdq"},
				{Name: "sweeper", Path: "s.ctdq"},
			},
		},
		{
			name:  "path with equals keeps the remainder",
			lists: []string{"a=dir/x=y.ctdq"},
			want:  []serve.ModelSpec{{Name: "a", Path: "dir/x=y.ctdq"}},
		},
		{name: "empty", bad: true},
		{name: "missing path", lists: []string{"a="}, bad: true},
		{name: "missing name", lists: []string{"=p.ctdq"}, bad: true},
		{name: "no separator", lists: []string{"plainpath"}, bad: true},
		{name: "bare fast suffix", lists: []string{"a=:fast"}, bad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseModelSpecs(tc.legacy, tc.fast, tc.lists)
			if tc.bad {
				if err == nil {
					t.Fatalf("got %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d specs %v, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("spec %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
