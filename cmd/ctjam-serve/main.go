// Command ctjam-serve serves trained anti-jamming policies over HTTP/JSON:
// an inference daemon for deployments where fleets of ZigBee links share
// trained Q networks. It is a thin shell around internal/serve, which
// provides cross-request micro-batching (concurrent single-state decisions
// coalesce into one batched forward pass on the AVX kernels), a multi-model
// registry (many named checkpoints in one process, each hot-reloadable), and
// streaming NDJSON sessions (one connection per link for its whole hopping
// session).
//
// Models are named with repeated -models name=path flags (or one
// comma-separated list); -model PATH is the legacy single-model spelling and
// maps to the name "default". The first named model backs the legacy
// un-named routes. Checkpoints may be in any of the repo's formats: a bare
// network (ctjam-train -out), a DQN learner state, or a full training
// checkpoint (ctjam-train -checkpoint).
//
// Each model serves on the exact float64 engine by default. A ":fast" suffix
// on a -models path (name=path:fast) — or -fast alongside -model — serves
// that model on the float32+FMA fast path instead: roughly 3x the batched
// decision throughput, with Q-values tolerance-close to exact and decisions
// that can differ only at exact-Q near-ties (see DESIGN.md, "Fast-path
// numerics"). The engine each model runs on is reported in /v1/models and
// /v1/stats.
//
// Endpoints:
//
//	POST /v1/decide                 {"state":[...]} or {"states":[[...],...]},
//	                                optional "qvalues":true — returns
//	                                {"action":n} / {"actions":[...]}
//	POST /v1/models/{name}/decide   same, against a named model
//	POST /v1/session                streaming NDJSON decision session
//	POST /v1/models/{name}/session  same, against a named model
//	GET  /v1/models                 the registry listing
//	GET  /v1/healthz                liveness plus the default model's shape
//	GET  /v1/stats                  per-model latency histograms (p50/p95/p99)
//	                                and batcher fill/flush distribution
//	POST /v1/reload                 re-read every model file (same as SIGHUP)
//	POST /v1/models/{name}/reload   re-read one model file
//
// Micro-batching is on by default (-batch=false restores one forward pass
// per request); -batch-window bounds the queueing latency a lone request
// pays and -max-batch the states per fused forward. SIGTERM/SIGINT drain
// gracefully: admissions stop with 503, pending micro-batches flush, open
// sessions unblock, and in-flight requests finish within -shutdown-timeout.
//
// With -pprof (the default), the standard net/http/pprof profiling surface
// is mounted under /debug/pprof/ on the same listener, so a live daemon can
// be profiled with e.g.
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// Pass -pprof=false on exposed deployments where the debug surface should
// not be reachable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctjam/internal/serve"
)

// parseModelSpecs expands -models values ("name=path[,name=path...]",
// repeatable) and the legacy -model path into the registry's spec list,
// preserving flag order so the first spec backs the legacy routes. A ":fast"
// suffix on a path serves that model on the float32+FMA fast path; fastLegacy
// does the same for the -model spelling.
func parseModelSpecs(legacy string, fastLegacy bool, lists []string) ([]serve.ModelSpec, error) {
	var specs []serve.ModelSpec
	if legacy != "" {
		specs = append(specs, serve.ModelSpec{Name: "default", Path: legacy, Fast: fastLegacy})
	}
	for _, list := range lists {
		for _, entry := range strings.Split(list, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			name, path, ok := strings.Cut(entry, "=")
			if !ok || name == "" || path == "" {
				return nil, fmt.Errorf("bad model spec %q (want name=path[:fast])", entry)
			}
			fast := false
			if p, found := strings.CutSuffix(path, ":fast"); found {
				fast, path = true, p
				if path == "" {
					return nil, fmt.Errorf("bad model spec %q (want name=path[:fast])", entry)
				}
			}
			specs = append(specs, serve.ModelSpec{Name: name, Path: path, Fast: fast})
		}
	}
	if len(specs) == 0 {
		return nil, errors.New("no models: pass -model PATH or -models name=path")
	}
	return specs, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "single checkpoint to serve as model \"default\" (CTJM model, CTDQ learner state or CTTC training checkpoint)")
	fast := flag.Bool("fast", false, "serve the -model checkpoint on the float32+FMA inference fast path (named -models entries opt in with a path:fast suffix)")
	var modelLists []string
	flag.Func("models", "named checkpoints to serve, name=path[,name=path...] (repeatable)", func(v string) error {
		modelLists = append(modelLists, v)
		return nil
	})
	defaultModel := flag.String("default-model", "", "model backing the legacy un-named routes (default: first spec)")
	batch := flag.Bool("batch", true, "coalesce concurrent single-state decisions into batched forward passes")
	window := flag.Duration("batch-window", serve.DefaultWindow, "micro-batch latency budget (max queueing delay for a lone request)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max states per batched forward pass")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBody, "decide request body cap in bytes (larger bodies get 413)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining in-flight requests on SIGTERM/SIGINT")
	pprofOn := flag.Bool("pprof", true, "expose net/http/pprof under /debug/pprof/ on the same listener")
	flag.Parse()

	specs, err := parseModelSpecs(*model, *fast, modelLists)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctjam-serve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	srv, err := serve.New(serve.Config{
		Models:       specs,
		DefaultModel: *defaultModel,
		Batching:     *batch,
		MaxBatch:     *maxBatch,
		Window:       *window,
		MaxBody:      *maxBody,
		PProf:        *pprofOn,
	})
	if err != nil {
		log.Fatalf("ctjam-serve: %v", err)
	}
	for _, name := range srv.Registry().Names() {
		m := srv.Registry().Lookup(name)
		log.Printf("model %q: %s (engine %s)", name, m.Path(), m.Engine())
	}
	log.Printf("serving %d model(s) on %s (batching=%v window=%v max-batch=%d)",
		len(specs), *addr, *batch, *window, *maxBatch)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.ReloadAll(); err != nil {
				log.Printf("reload failed (keeping previous snapshots where load failed): %v", err)
			} else {
				log.Printf("reloaded all models")
			}
		}
	}()

	h := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}

	// Graceful drain: stop admissions (503), flush the pending micro-batches,
	// unblock streaming sessions, then let http.Server.Shutdown wait out the
	// in-flight requests under a deadline.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, syscall.SIGINT)
	shutdownDone := make(chan error, 1)
	go func() {
		sig := <-term
		log.Printf("%s: draining (timeout %v)", sig, *shutdownTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		shutdownDone <- h.Shutdown(ctx)
	}()

	if err := h.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ctjam-serve: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		log.Fatalf("ctjam-serve: shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
