// Command ctjam-serve serves a trained anti-jamming policy over HTTP/JSON:
// an inference daemon for deployments where many ZigBee links share one
// trained Q network. It loads a checkpoint in any of the repo's formats — a
// bare network (ctjam-train -out), a DQN learner state, or a full training
// checkpoint (ctjam-train -checkpoint) — snapshots just the online weights,
// and answers single and batched /v1/decide queries. SIGHUP (or POST
// /v1/reload) hot-swaps the snapshot from the same path without dropping
// in-flight requests, so a training run can keep publishing checkpoints
// under the server.
//
// Endpoints:
//
//	POST /v1/decide  {"state":[...]} or {"states":[[...],...]}, optional
//	                 "qvalues":true — returns {"action":n} / {"actions":[...]}
//	GET  /v1/healthz liveness plus the loaded model's dimensions
//	GET  /v1/stats   request/state/error counters and mean latency
//	POST /v1/reload  re-read the model file (same as SIGHUP)
//
// With -pprof (the default), the standard net/http/pprof profiling surface
// is mounted under /debug/pprof/ on the same listener, so a live daemon can
// be profiled with e.g.
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// Pass -pprof=false on exposed deployments where the debug surface should
// not be reachable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ctjam/internal/core"
	"ctjam/internal/rl"
)

// maxBody bounds /v1/decide request bodies (a 4096-state batch at paper
// dimensions is ~2 MB of JSON).
const maxBody = 8 << 20

type server struct {
	modelPath string
	pprof     bool
	snap      atomic.Pointer[rl.Snapshot]

	reloads      atomic.Int64
	requests     atomic.Int64
	statesServed atomic.Int64
	errCount     atomic.Int64
	latencyNS    atomic.Int64
}

// newServer loads the checkpoint at modelPath and builds the service.
func newServer(modelPath string) (*server, error) {
	s := &server{modelPath: modelPath}
	if err := s.reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// reload re-reads the model file and atomically swaps the snapshot in;
// in-flight requests keep using the snapshot they already loaded.
func (s *server) reload() error {
	f, err := os.Open(s.modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := core.SnapshotFromCheckpoint(f)
	if err != nil {
		return fmt.Errorf("load %s: %w", s.modelPath, err)
	}
	s.snap.Store(snap)
	s.reloads.Add(1)
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/reload", s.handleReload)
	if s.pprof {
		// The DefaultServeMux registrations done by importing net/http/pprof
		// don't apply to a private mux, so mount the handlers explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type decideRequest struct {
	// State is a single observation of StateDim features...
	State []float64 `json:"state,omitempty"`
	// ...or States stacks a batch of them; exactly one must be set.
	States [][]float64 `json:"states,omitempty"`
	// QValues asks for the full Q rows alongside the argmax actions.
	QValues bool `json:"qvalues,omitempty"`
}

type decideResponse struct {
	Action  *int        `json:"action,omitempty"`
	Actions []int       `json:"actions,omitempty"`
	Q       [][]float64 `json:"q,omitempty"`
}

func (s *server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	start := time.Now()
	s.requests.Add(1)
	var req decideRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	single := req.State != nil
	if single == (req.States != nil) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf(`exactly one of "state" and "states" must be set`))
		return
	}
	states := req.States
	if single {
		states = [][]float64{req.State}
	}

	snap := s.snap.Load()
	dim := snap.StateDim()
	flat := make([]float64, 0, len(states)*dim)
	for i, st := range states {
		if len(st) != dim {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("state %d has %d features, model wants %d", i, len(st), dim))
			return
		}
		flat = append(flat, st...)
	}
	if len(flat) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}

	var resp decideResponse
	actions := make([]int, len(states))
	if req.QValues {
		// One forward serves both: take the argmax from the Q rows.
		na := snap.NumActions()
		q := make([]float64, len(states)*na)
		if err := snap.QValuesBatch(q, flat); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		resp.Q = make([][]float64, len(states))
		for i := range states {
			row := q[i*na : (i+1)*na]
			resp.Q[i] = row
			actions[i] = argmax(row)
		}
	} else if err := snap.GreedyBatch(actions, flat); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	if single {
		resp.Action = &actions[0]
	} else {
		resp.Actions = actions
	}
	s.statesServed.Add(int64(len(states)))
	s.latencyNS.Add(time.Since(start).Nanoseconds())
	writeJSON(w, http.StatusOK, resp)
}

// argmax matches rl's tie-breaking: the first maximal action wins.
func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"model":       s.modelPath,
		"state_dim":   snap.StateDim(),
		"num_actions": snap.NumActions(),
		"params":      snap.ParamCount(),
		"reloads":     s.reloads.Load(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	requests := s.requests.Load()
	var meanLatencyUS float64
	if requests > 0 {
		meanLatencyUS = float64(s.latencyNS.Load()) / float64(requests) / 1e3
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":        requests,
		"states_served":   s.statesServed.Load(),
		"errors":          s.errCount.Load(),
		"reloads":         s.reloads.Load(),
		"mean_latency_us": meanLatencyUS,
	})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	if err := s.reload(); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloads": s.reloads.Load()})
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.errCount.Add(1)
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "policy checkpoint to serve (CTJM model, CTDQ learner state or CTTC training checkpoint)")
	pprofOn := flag.Bool("pprof", true, "expose net/http/pprof under /debug/pprof/ on the same listener")
	flag.Parse()
	if *model == "" {
		fmt.Fprintln(os.Stderr, "ctjam-serve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := newServer(*model)
	if err != nil {
		log.Fatalf("ctjam-serve: %v", err)
	}
	srv.pprof = *pprofOn
	snap := srv.snap.Load()
	log.Printf("serving %s (%d features -> %d actions, %d params) on %s",
		*model, snap.StateDim(), snap.NumActions(), snap.ParamCount(), *addr)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.reload(); err != nil {
				log.Printf("reload failed (keeping previous snapshot): %v", err)
			} else {
				log.Printf("reloaded %s", *model)
			}
		}
	}()

	h := &http.Server{Addr: *addr, Handler: srv.handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := h.ListenAndServe(); err != nil {
		log.Fatalf("ctjam-serve: %v", err)
	}
}
