package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-symbols", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-symbols", "0"}); err == nil {
		t.Fatal("expected error for 0 symbols")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
}
