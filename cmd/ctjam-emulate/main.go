// Command ctjam-emulate demonstrates the cross-technology signal emulation
// of §II-A: it builds an EmuBee waveform (a Wi-Fi OFDM transmission that a
// ZigBee receiver decodes as ZigBee symbols), comparing the paper's
// quantization optimization against the naive emulation, and reports the
// per-distance jamming effect of the three signal types (Fig. 2b).
//
// Usage:
//
//	ctjam-emulate [-symbols 16] [-seed 1] [-fig2b]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ctjam"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-emulate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-emulate", flag.ContinueOnError)
	var (
		nSymbols = fs.Int("symbols", 16, "ZigBee symbols to emulate")
		seed     = fs.Int64("seed", 1, "random seed")
		fig2b    = fs.Bool("fig2b", false, "also reproduce the Fig. 2(b) jamming-effect curves")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nSymbols < 1 {
		return fmt.Errorf("need at least one symbol")
	}

	rng := rand.New(rand.NewSource(*seed))
	symbols := make([]uint8, *nSymbols)
	for i := range symbols {
		symbols[i] = uint8(rng.Intn(16))
	}
	fmt.Printf("designed ZigBee symbols: %v\n", symbols)

	opt, err := ctjam.EmulateZigBee(symbols, true)
	if err != nil {
		return err
	}
	naive, err := ctjam.EmulateZigBee(symbols, false)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-28s %12s %12s\n", "", "optimized", "naive (a=1)")
	fmt.Printf("%-28s %12.4f %12.4f\n", "constellation scale alpha", opt.Alpha, naive.Alpha)
	fmt.Printf("%-28s %12.2f %12.2f\n", "quantization error E(alpha)", opt.QuantError, naive.QuantError)
	fmt.Printf("%-28s %12.3f %12.3f\n", "waveform EVM", opt.EVM, naive.EVM)
	fmt.Printf("%-28s %9d/%-3d %9d/%-3d\n", "ZigBee symbol errors",
		opt.SymbolErrors, opt.Symbols, naive.SymbolErrors, naive.Symbols)
	fmt.Printf("%-28s %12d\n", "Wi-Fi payload bits", len(opt.WiFiPayloadBits))
	fmt.Printf("%-28s %12d\n", "baseband samples @20 MHz", len(opt.Wave))

	if *fig2b {
		fmt.Println()
		if err := ctjam.RunExperiment(os.Stdout, "fig2b", ctjam.ScalePaper); err != nil {
			return err
		}
	}
	return nil
}
