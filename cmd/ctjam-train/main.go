// Command ctjam-train trains the paper's DQN anti-jamming policy online in
// the slot-level jamming environment and saves the model, reporting the
// §IV-B statistics (transition count, parameter count, serialized size) and
// a post-training evaluation.
//
// Usage:
//
//	ctjam-train [-slots 30000] [-mode max|random] [-out model.ctjm]
//	            [-eval 20000] [-compare] [-workers N] [-seed 1]
//	            [-fault SPEC] [-checkpoint FILE|DIR] [-checkpoint-every N]
//	            [-keep N] [-resume] [-stop-after N]
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// With -compare, the post-training evaluation also runs the passive, random
// and static baselines; the four independent evaluations fan out over
// -workers goroutines (default: all cores).
//
// -fault injects deterministic channel faults during training and
// evaluation, e.g. "burst:p=0.1,power=30;ack:p=0.02" (see the fault package
// for the grammar). -checkpoint writes a crash-safe training checkpoint
// every -checkpoint-every slots; -resume continues from it (the flags other
// than -stop-after must match the interrupted run, since the exploration
// schedule derives from -slots). A resumed run finishes bit-identical to an
// uninterrupted one. -stop-after exits cleanly once training reaches slot N
// (absolute, counted from slot 0), mainly for exercising resume.
//
// With -keep N, -checkpoint names a directory instead of a file: each write
// becomes a new generation (ckpt-000123.ctdq, named by training slot), only
// the newest N are retained, and -resume starts from the newest generation
// that loads cleanly — a corrupt newest file falls back to the one before it.
//
// -cpuprofile, -memprofile and -trace profile the training + evaluation run
// (pprof CPU/heap profiles and a runtime execution trace), the inputs DQN
// hot-path optimisation work starts from.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctjam"
	"ctjam/internal/atomicfile"
	"ctjam/internal/parallel"
	"ctjam/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-train", flag.ContinueOnError)
	var (
		slots   = fs.Int("slots", 30000, "online training slots")
		mode    = fs.String("mode", "max", "jammer power mode: 'max' or 'random'")
		out     = fs.String("out", "", "path to save the trained model (optional)")
		eval    = fs.Int("eval", 20000, "post-training evaluation slots")
		seed    = fs.Int64("seed", 1, "random seed")
		compare = fs.Bool("compare", false, "also evaluate the passive/random/static baselines")
		workers = fs.Int("workers", 0, "worker goroutines for -compare evaluations (0 = all cores, 1 = serial)")
		faults  = fs.String("fault", "", "fault injection spec, e.g. 'burst:p=0.1,power=30;ack:p=0.02'")
		ckpt    = fs.String("checkpoint", "", "path for crash-safe training checkpoints (optional)")
		every   = fs.Int("checkpoint-every", 1000, "slots between checkpoint writes")
		keep    = fs.Int("keep", 0, "retain the newest N checkpoint generations in the -checkpoint directory (0 = single file)")
		resume  = fs.Bool("resume", false, "resume from -checkpoint if it exists")
		stop    = fs.Int("stop-after", 0, "stop cleanly once training reaches this slot (0 = run to completion)")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile of training + evaluation to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		trcFile = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	session, err := prof.Start(*cpuProf, *memProf, *trcFile)
	if err != nil {
		return err
	}
	defer func() {
		if err := session.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ctjam-train: profiling:", err)
		}
	}()
	if (*resume || *stop > 0) && *ckpt == "" {
		return fmt.Errorf("-resume and -stop-after require -checkpoint")
	}
	if *keep < 0 {
		return fmt.Errorf("-keep must be >= 0")
	}
	if *keep > 0 && *ckpt == "" {
		return fmt.Errorf("-keep requires -checkpoint")
	}

	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerMode(*mode)
	cfg.Seed = *seed
	cfg.FaultSpec = *faults

	fmt.Printf("training DQN: %d slots, %s-power jammer, seed %d\n", *slots, *mode, *seed)
	start := time.Now()
	policy, err := ctjam.TrainDQNWithOptions(cfg, *slots, ctjam.TrainOptions{
		Checkpoint:      *ckpt,
		CheckpointEvery: *every,
		Keep:            *keep,
		Resume:          *resume,
		StopAfter:       *stop,
	})
	if err != nil {
		return err
	}
	if *stop > 0 && *stop < *slots {
		// Interrupted before completing all slots; the checkpoint holds the
		// progress, and the partially-trained policy is not worth evaluating.
		fmt.Printf("stopped at slot %d of %d; resume with -resume -checkpoint %s\n", *stop, *slots, *ckpt)
		return nil
	}
	fmt.Printf("trained in %v; model has %d parameters\n",
		time.Since(start).Round(time.Millisecond), policy.ParamCount())

	if *out != "" {
		// Atomic write: ctjam-serve may be watching this path for hot reload,
		// and must never observe a torn model file.
		if err := atomicfile.WriteFile(*out, 0o644, policy.Save); err != nil {
			return err
		}
		info, err := os.Stat(*out)
		if err != nil {
			return err
		}
		fmt.Printf("saved %s (%.1f KB; paper reports 10664 floats / 42.7 KB)\n",
			*out, float64(info.Size())/1024)
	}

	if !*compare {
		m, err := ctjam.Evaluate(cfg, ctjam.SchemeRL, policy, *eval)
		if err != nil {
			return err
		}
		fmt.Printf("evaluation over %d slots: ST=%.1f%% AH=%.1f%% SH=%.1f%% AP=%.1f%% SP=%.1f%%\n",
			m.Slots, 100*m.ST, 100*m.AH, 100*m.SH, 100*m.AP, 100*m.SP)
		fmt.Printf("paper reference at these defaults: ST ~78%%\n")
		return nil
	}

	// Each evaluation builds its own environment and the baselines are
	// stateless constructions, so the four runs are independent; the trained
	// policy is used by exactly one of them.
	schemes := []ctjam.Scheme{ctjam.SchemeRL, ctjam.SchemePassive, ctjam.SchemeRandom, ctjam.SchemeStatic}
	rows, err := parallel.Map(*workers, len(schemes), func(p int) (ctjam.Metrics, error) {
		pol := policy
		if schemes[p] != ctjam.SchemeRL {
			pol = nil
		}
		return ctjam.Evaluate(cfg, schemes[p], pol, *eval)
	})
	if err != nil {
		return err
	}
	fmt.Printf("evaluation over %d slots:\n", *eval)
	fmt.Printf("%-8s %8s %8s %8s %8s %8s\n", "scheme", "ST%", "AH%", "SH%", "AP%", "SP%")
	for p, scheme := range schemes {
		m := rows[p]
		fmt.Printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			scheme, 100*m.ST, 100*m.AH, 100*m.SH, 100*m.AP, 100*m.SP)
	}
	fmt.Printf("paper reference at these defaults: RL ST ~78%%\n")
	return nil
}
