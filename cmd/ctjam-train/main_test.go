package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	out := filepath.Join(t.TempDir(), "model.ctjm")
	if err := run([]string{"-slots", "1500", "-eval", "1000", "-out", out}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 1024 {
		t.Fatalf("model file only %d bytes", info.Size())
	}
}

func TestRunCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	if err := run([]string{"-slots", "1500", "-eval", "800", "-compare", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-mode", "quantum", "-slots", "10", "-eval", "10"}); err == nil {
		t.Fatal("expected bad-mode error")
	}
}
