// Command ctjam-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	ctjam-experiments [-id fig6a] [-scale paper|quick] [-engine mdp|dqn]
//	                  [-workers N] [-csv dir] [-list] [-cache-stats]
//	                  [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// With -id all (the default) every registered experiment runs in order,
// printing paper-vs-measured tables; -csv additionally writes one CSV per
// experiment into the given directory. Independent sweep points fan out
// over -workers goroutines (default: all cores) with bit-identical results
// at any worker count. All experiments share one sweep-point cache, so the
// 20 metric panels of Figs. 6-8 (and Table I) train and evaluate each unique
// (config, engine, budget) point exactly once; -cache-stats reports the
// reuse on stderr.
//
// -cpuprofile, -memprofile and -trace write pprof CPU/heap profiles and a
// runtime execution trace covering the experiment runs, for feeding
// `go tool pprof` / `go tool trace`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ctjam/internal/experiments"
	"ctjam/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-experiments", flag.ContinueOnError)
	var (
		id      = fs.String("id", "all", "experiment id (see -list) or 'all'")
		scale   = fs.String("scale", "paper", "budget: 'paper' or 'quick'")
		engine  = fs.String("engine", "mdp", "RL FH engine: 'mdp' (exact policy) or 'dqn' (train per point)")
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker goroutines for independent sweep points (0 = all cores, 1 = serial)")
		stats   = fs.Bool("cache-stats", false, "report sweep-point cache reuse on stderr after the runs")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		trcFile = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, eid := range experiments.IDs() {
			desc, err := experiments.Describe(eid)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %s\n", eid, desc)
		}
		return nil
	}

	opts := experiments.DefaultOptions()
	switch *scale {
	case "paper":
	case "quick":
		opts = experiments.QuickOptions()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	switch *engine {
	case "mdp":
		opts.Engine = experiments.EngineMDP
	case "dqn":
		opts.Engine = experiments.EngineDQN
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	opts.Seed = *seed
	opts.Workers = *workers
	// One cache for the whole invocation: with -id all, the 20 metric
	// panels of Figs. 6-8 and table1 reuse each unique sweep point instead
	// of recomputing it per panel.
	opts.Cache = experiments.NewCache()

	ids := experiments.IDs()
	if *id != "all" {
		ids = []string{*id}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	session, err := prof.Start(*cpuProf, *memProf, *trcFile)
	if err != nil {
		return err
	}
	defer func() {
		if err := session.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ctjam-experiments: profiling:", err)
		}
	}()
	for _, eid := range ids {
		res, err := experiments.Run(eid, opts)
		if errors.Is(err, experiments.ErrUnknownExperiment) {
			return fmt.Errorf("unknown experiment %q; known ids:\n  %s",
				eid, strings.Join(experiments.IDs(), "\n  "))
		}
		if err != nil {
			return err
		}
		if err := experiments.Format(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, eid+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *stats {
		cs := opts.Cache.Stats()
		fmt.Fprintf(os.Stderr, "sweep-point cache: %d unique points computed, %d reused, %d schemes trained\n",
			cs.PointMisses, cs.PointHits, cs.Schemes)
	}
	return nil
}
