// Command ctjam-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	ctjam-experiments [-id fig6a] [-scale paper|quick] [-engine mdp|dqn]
//	                  [-workers N] [-csv dir] [-list] [-cache-stats]
//	                  [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	                  [-distribute addr [-no-scheme-ship] | -worker URL |
//	                   -shards N -shard-index I -spool DIR | -merge -spool DIR]
//
// With -id all (the default) every registered experiment runs in order,
// printing paper-vs-measured tables; -csv additionally writes one CSV per
// experiment into the given directory. Independent sweep points fan out
// over -workers goroutines (default: all cores) with bit-identical results
// at any worker count. All experiments share one sweep-point cache, so the
// 20 metric panels of Figs. 6-8 (and Table I) train and evaluate each unique
// (config, engine, budget) point exactly once; -cache-stats reports the
// reuse on stderr.
//
// Distributed execution (see internal/dist and DESIGN.md) shards those
// unique sweep points across processes, with output bit-identical to a
// single-process run:
//
//	-distribute addr   coordinate: serve work units over HTTP on addr
//	                   (":0" picks a port, reported on stderr), wait for
//	                   workers to return every result, then print the
//	                   experiments from the merged cache. Each unique
//	                   scheme is trained exactly once fleet-wide: the
//	                   coordinator leases train units first, stores the
//	                   uploaded CTSC checkpoints content-addressed, and
//	                   ships them to the workers evaluating dependent
//	                   points (-no-scheme-ship restores per-worker
//	                   retraining).
//	-worker URL        work: poll the coordinator at URL (e.g.
//	                   http://host:9077), evaluate assigned units locally,
//	                   report results, exit when the run completes.
//	-shards N -shard-index I -spool DIR
//	                   static mode (no networking): evaluate shard I of a
//	                   round-robin N-way split of the work list and write
//	                   DIR/shard-III-of-NNN.json atomically.
//	-merge -spool DIR  merge a complete spool set from DIR and print the
//	                   experiments from it. Fails unless every shard file
//	                   is present, consistent, and covers every unit.
//
// Any shard or worker failure exits non-zero.
//
// -cpuprofile, -memprofile and -trace write pprof CPU/heap profiles and a
// runtime execution trace covering the experiment runs, for feeding
// `go tool pprof` / `go tool trace`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ctjam/internal/dist"
	"ctjam/internal/experiments"
	"ctjam/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-experiments", flag.ContinueOnError)
	var (
		id      = fs.String("id", "all", "experiment id (see -list) or 'all'")
		scale   = fs.String("scale", "paper", "budget: 'paper' or 'quick'")
		engine  = fs.String("engine", "mdp", "RL FH engine: 'mdp' (exact policy) or 'dqn' (train per point)")
		fast32  = fs.Bool("fast32", false, "evaluate DQN sweep points on the float32+FMA inference fast path (not bit-identical to exact runs; dqn engine only)")
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "worker goroutines for independent sweep points (0 = all cores, 1 = serial)")
		stats   = fs.Bool("cache-stats", false, "report sweep-point cache reuse on stderr after the runs")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		trcFile = fs.String("trace", "", "write a runtime execution trace to this file")

		distribute = fs.String("distribute", "", "coordinate a distributed run: serve work units on this addr:port, wait for -worker processes, then print the experiments")
		noShip     = fs.Bool("no-scheme-ship", false, "distributed runs: disable fleet-wide scheme reuse (every worker retrains the schemes its points need)")
		workerURL  = fs.String("worker", "", "run as a worker for the coordinator at this base URL (e.g. http://host:9077) and exit")
		workerID   = fs.String("worker-id", "", "worker name in protocol requests (default host-pid)")
		shards     = fs.Int("shards", 0, "static sharding: total shard count (requires -shard-index and -spool)")
		shardIndex = fs.Int("shard-index", -1, "static sharding: this process's shard index in [0,shards)")
		spool      = fs.String("spool", "", "static sharding: directory for shard result files")
		merge      = fs.Bool("merge", false, "merge the spool files in -spool, then print the experiments from them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	modes := 0
	for _, on := range []bool{*distribute != "", *workerURL != "", *shards > 0, *merge} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return errors.New("-distribute, -worker, -shards and -merge are mutually exclusive")
	}
	if *shards > 0 && (*shardIndex < 0 || *spool == "") {
		return errors.New("-shards requires -shard-index and -spool")
	}
	if *shardIndex >= 0 && *shards <= 0 {
		return errors.New("-shard-index requires -shards")
	}
	if *merge && *spool == "" {
		return errors.New("-merge requires -spool")
	}
	if *spool != "" && *shards <= 0 && !*merge {
		return errors.New("-spool requires -shards or -merge")
	}

	if *workerURL != "" {
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		w := dist.NewWorker(*workerURL, dist.WorkerOptions{ID: id, Workers: *workers})
		n, err := w.Run(context.Background())
		if err != nil {
			return err
		}
		cs := w.CacheStats()
		fmt.Fprintf(os.Stderr, "ctjam-experiments: worker %s evaluated %d units (%d schemes trained here, %d fetched from coordinator)\n",
			id, n, cs.SchemeBuilds, cs.SchemeImports)
		return nil
	}

	if *list {
		for _, eid := range experiments.IDs() {
			desc, err := experiments.Describe(eid)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %s\n", eid, desc)
		}
		return nil
	}

	opts := experiments.DefaultOptions()
	switch *scale {
	case "paper":
	case "quick":
		opts = experiments.QuickOptions()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	switch *engine {
	case "mdp":
		if *fast32 {
			return errors.New("-fast32 only applies to -engine dqn")
		}
		opts.Engine = experiments.EngineMDP
	case "dqn":
		opts.Engine = experiments.EngineDQN
		opts.Fast32 = *fast32
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	opts.Seed = *seed
	opts.Workers = *workers
	// One cache for the whole invocation: with -id all, the 20 metric
	// panels of Figs. 6-8 and table1 reuse each unique sweep point instead
	// of recomputing it per panel.
	opts.Cache = experiments.NewCache()

	ids := experiments.IDs()
	if *id != "all" {
		ids = []string{*id}
	}

	if *shards > 0 {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*spool, dist.SpoolName(*shardIndex, *shards))
		n, err := dist.RunShard(context.Background(), opts, ids, *shardIndex, *shards, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ctjam-experiments: shard %d/%d: %d units -> %s\n", *shardIndex, *shards, n, path)
		return nil
	}
	if *merge {
		units, err := dist.UnitsFor(opts, ids)
		if err != nil {
			return err
		}
		n, err := dist.MergeSpools(*spool, opts.Cache, units)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ctjam-experiments: merged %d units from %s\n", n, *spool)
	}
	if *distribute != "" {
		coord, err := dist.NewCoordinator(opts, ids, dist.CoordinatorOptions{NoSchemeShip: *noShip})
		if err != nil {
			return err
		}
		logf := func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "ctjam-experiments: "+format+"\n", a...)
		}
		if err := coord.ListenAndWait(context.Background(), *distribute, logf); err != nil {
			return err
		}
		n := coord.ImportInto(opts.Cache)
		logf("imported %d distributed units", n)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	session, err := prof.Start(*cpuProf, *memProf, *trcFile)
	if err != nil {
		return err
	}
	defer func() {
		if err := session.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ctjam-experiments: profiling:", err)
		}
	}()
	for _, eid := range ids {
		res, err := experiments.Run(eid, opts)
		if errors.Is(err, experiments.ErrUnknownExperiment) {
			return fmt.Errorf("unknown experiment %q; known ids:\n  %s",
				eid, strings.Join(experiments.IDs(), "\n  "))
		}
		if err != nil {
			return err
		}
		if err := experiments.Format(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, eid+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *stats {
		cs := opts.Cache.Stats()
		fmt.Fprintf(os.Stderr, "sweep-point cache: %d unique points computed, %d reused, %d schemes (%d trained here, %d imported)\n",
			cs.PointMisses, cs.PointHits, cs.Schemes, cs.SchemeBuilds, cs.SchemeImports)
		fmt.Fprintf(os.Stderr, "field-run cache: %d unique field runs computed, %d reused\n",
			cs.FieldMisses, cs.FieldHits)
	}
	return nil
}
