package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-id", "fig9a", "-scale", "quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig9a.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scale", "gigantic"}); err == nil {
		t.Fatal("expected bad-scale error")
	}
	if err := run([]string{"-engine", "quantum"}); err == nil {
		t.Fatal("expected bad-engine error")
	}
	if err := run([]string{"-id", "figZZ", "-scale", "quick"}); err == nil {
		t.Fatal("expected unknown-id error")
	}
}
