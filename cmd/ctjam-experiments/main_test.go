package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-id", "fig9a", "-scale", "quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig9a.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scale", "gigantic"}); err == nil {
		t.Fatal("expected bad-scale error")
	}
	if err := run([]string{"-engine", "quantum"}); err == nil {
		t.Fatal("expected bad-engine error")
	}
	err := run([]string{"-id", "figZZ", "-scale", "quick"})
	if err == nil {
		t.Fatal("expected unknown-id error")
	}
	// The unknown-id error should carry usage help: the known ids.
	if !strings.Contains(err.Error(), "fig6a") || !strings.Contains(err.Error(), "table1") {
		t.Fatalf("unknown-id error does not list known ids: %v", err)
	}
}

func TestRunModeValidation(t *testing.T) {
	cases := [][]string{
		{"-distribute", ":0", "-worker", "http://x"},
		{"-distribute", ":0", "-merge"},
		{"-worker", "http://x", "-shards", "2", "-shard-index", "0", "-spool", "d"},
		{"-shards", "2"},      // missing -shard-index and -spool
		{"-shard-index", "0"}, // missing -shards
		{"-merge"},            // missing -spool
		{"-spool", "d"},       // missing -shards or -merge
		{"-shards", "2", "-shard-index", "5", "-spool", "d"}, // index out of range
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted an invalid mode combination", args)
		}
	}
}

func TestRunStaticShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, idx := range []string{"0", "1"} {
		if err := run([]string{"-id", "table1", "-scale", "quick", "-shards", "2", "-shard-index", idx, "-spool", dir}); err != nil {
			t.Fatalf("shard %s: %v", idx, err)
		}
	}
	if err := run([]string{"-id", "table1", "-scale", "quick", "-merge", "-spool", dir}); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// An incomplete spool set must fail the merge, not silently recompute.
	if err := os.Remove(filepath.Join(dir, "shard-001-of-002.json")); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "table1", "-scale", "quick", "-merge", "-spool", dir}); err == nil {
		t.Fatal("merge of an incomplete shard set succeeded")
	}
}

func TestRunWorkersFlag(t *testing.T) {
	for _, w := range []string{"1", "4"} {
		if err := run([]string{"-id", "fig10a", "-scale", "quick", "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
	}
}
