package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-id", "fig9a", "-scale", "quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig9a.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scale", "gigantic"}); err == nil {
		t.Fatal("expected bad-scale error")
	}
	if err := run([]string{"-engine", "quantum"}); err == nil {
		t.Fatal("expected bad-engine error")
	}
	err := run([]string{"-id", "figZZ", "-scale", "quick"})
	if err == nil {
		t.Fatal("expected unknown-id error")
	}
	// The unknown-id error should carry usage help: the known ids.
	if !strings.Contains(err.Error(), "fig6a") || !strings.Contains(err.Error(), "table1") {
		t.Fatalf("unknown-id error does not list known ids: %v", err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	for _, w := range []string{"1", "4"} {
		if err := run([]string{"-id", "fig10a", "-scale", "quick", "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
	}
}
