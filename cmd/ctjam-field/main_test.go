package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-slots", "30", "-slot-duration", "1s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaleSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{
		"-slots", "20", "-slot-duration", "1s",
		"-clusters", "4", "-nodes-per-cluster", "2", "-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-mode", "quantum"}); err == nil {
		t.Fatal("expected bad-mode error")
	}
}
