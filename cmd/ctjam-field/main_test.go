package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-slots", "30", "-slot-duration", "1s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-mode", "quantum"}); err == nil {
		t.Fatal("expected bad-mode error")
	}
}
