// Command ctjam-field runs the discrete-event testbed simulator: a star
// ZigBee network (hub + peripherals) defending against a cross-technology
// jammer, reporting goodput and slot utilization per scheme (Fig. 11a).
// With -clusters > 1 it runs the sharded multi-cluster field engine
// instead, scaling the same slot machinery to large node counts.
//
// Usage:
//
//	ctjam-field [-slots 400] [-slot-duration 3s] [-jam-slot 3s]
//	            [-nodes 3] [-mode max|random] [-jammer SPEC] [-seed 1]
//	            [-clusters 1] [-nodes-per-cluster 0] [-workers 0]
//	            [-cpuprofile f] [-memprofile f] [-trace f]
//
// -jammer selects the attacker's hopping strategy from the jammer zoo (see
// the jammer package spec grammar); empty keeps the paper's §II-C sweeper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctjam"
	"ctjam/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-field:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ctjam-field", flag.ContinueOnError)
	var (
		slots    = fs.Int("slots", 400, "Tx slots to simulate")
		slotDur  = fs.Duration("slot-duration", 3*time.Second, "Tx slot duration")
		jamSlot  = fs.Duration("jam-slot", 0, "jammer slot duration (default: same as Tx)")
		nodes    = fs.Int("nodes", 3, "peripheral node count")
		mode     = fs.String("mode", "max", "jammer power mode")
		jam      = fs.String("jammer", "", "jammer strategy spec (empty = the paper's sweeper)")
		seed     = fs.Int64("seed", 1, "random seed")
		useDQN   = fs.Bool("dqn", false, "use a trained DQN instead of the exact MDP policy")
		dqnSlots = fs.Int("dqn-train", 30000, "DQN training slots when -dqn is set")

		clusters = fs.Int("clusters", 1, "hopping clusters (>1 runs the sharded field engine)")
		perClus  = fs.Int("nodes-per-cluster", 0, "peripherals per cluster (default: -nodes)")
		workers  = fs.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS)")

		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerMode(*mode)
	cfg.JammerSpec = *jam
	cfg.Seed = *seed

	var (
		policy *ctjam.Policy
		rl     = ctjam.SchemeMDP
	)
	if *useDQN {
		fmt.Printf("training DQN (%d slots)...\n", *dqnSlots)
		policy, err = ctjam.TrainDQN(cfg, *dqnSlots)
		rl = ctjam.SchemeRL
	} else {
		policy, err = ctjam.SolveMDP(cfg)
	}
	if err != nil {
		return err
	}

	// Profile only the simulation itself, not policy construction: the hot
	// loops of interest are the slot engine, not MDP solving / DQN training.
	sess, err := prof.Start(*cpuprofile, *memprofile, *tracePath)
	if err != nil {
		return err
	}
	defer func() {
		if serr := sess.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	if *clusters > 1 {
		return runScale(cfg, rl, policy, scaleOptions{
			clusters: *clusters,
			nodes:    orDefault(*perClus, *nodes),
			slotDur:  *slotDur,
			jamSlot:  *jamSlot,
			slots:    *slots,
			workers:  *workers,
		})
	}

	results, err := ctjam.FieldCompare(cfg,
		[]ctjam.Scheme{ctjam.SchemePassive, ctjam.SchemeRandom, rl},
		policy,
		ctjam.FieldOptions{
			Nodes:        *nodes,
			SlotDuration: *slotDur,
			JammerSlot:   *jamSlot,
			Slots:        *slots,
		},
		true /* includeNoJammer */)
	if err != nil {
		return err
	}

	baseline := results[len(results)-1].GoodputPktsPerSlot
	fmt.Printf("%-10s %16s %14s %8s %10s\n", "scheme", "goodput pkt/slot", "vs no-jammer", "ST%", "util%")
	for _, r := range results {
		fmt.Printf("%-10s %16.0f %13.1f%% %8.1f %10.2f\n",
			r.Scheme, r.GoodputPktsPerSlot, 100*r.GoodputPktsPerSlot/baseline,
			100*r.ST, 100*r.Utilization)
	}
	fmt.Println("paper (Fig. 11a): PSV 216 (37.6%), Rand 311 (54.1%), RL 431 (78.5%), w/o Jx 575")
	return nil
}

type scaleOptions struct {
	clusters int
	nodes    int
	slotDur  time.Duration
	jamSlot  time.Duration
	slots    int
	workers  int
}

func orDefault(v, fallback int) int {
	if v > 0 {
		return v
	}
	return fallback
}

// runScale compares the schemes on the sharded multi-cluster engine: every
// cluster is a full hopping network with its own decorrelated jammer stream,
// executed across the worker pool.
func runScale(cfg ctjam.Config, rl ctjam.Scheme, policy *ctjam.Policy, o scaleOptions) error {
	schemes := []ctjam.Scheme{ctjam.SchemePassive, ctjam.SchemeRandom, rl}
	fmt.Printf("field engine: %d clusters x %d nodes, %d slots\n", o.clusters, o.nodes, o.slots)
	fmt.Printf("%-10s %8s %18s %16s %8s %10s\n",
		"scheme", "nodes", "field pkt/slot", "per-cluster", "ST%", "util%")
	for _, s := range schemes {
		r, err := ctjam.FieldScale(cfg, s, policy, ctjam.FieldScaleOptions{
			Clusters:        o.clusters,
			NodesPerCluster: o.nodes,
			SlotDuration:    o.slotDur,
			JammerSlot:      o.jamSlot,
			Slots:           o.slots,
			Workers:         o.workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %8d %18.0f %16.1f %8.1f %10.2f\n",
			r.Scheme, r.Nodes, r.GoodputPktsPerSlot, r.PerClusterGoodput,
			100*r.ST, 100*r.Utilization)
	}
	return nil
}
