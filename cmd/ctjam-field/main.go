// Command ctjam-field runs the discrete-event testbed simulator: a star
// ZigBee network (hub + peripherals) defending against a cross-technology
// jammer, reporting goodput and slot utilization per scheme (Fig. 11a).
//
// Usage:
//
//	ctjam-field [-slots 400] [-slot-duration 3s] [-jam-slot 3s]
//	            [-nodes 3] [-mode max|random] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctjam"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-field:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ctjam-field", flag.ContinueOnError)
	var (
		slots    = fs.Int("slots", 400, "Tx slots to simulate")
		slotDur  = fs.Duration("slot-duration", 3*time.Second, "Tx slot duration")
		jamSlot  = fs.Duration("jam-slot", 0, "jammer slot duration (default: same as Tx)")
		nodes    = fs.Int("nodes", 3, "peripheral node count")
		mode     = fs.String("mode", "max", "jammer power mode")
		seed     = fs.Int64("seed", 1, "random seed")
		useDQN   = fs.Bool("dqn", false, "use a trained DQN instead of the exact MDP policy")
		dqnSlots = fs.Int("dqn-train", 30000, "DQN training slots when -dqn is set")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ctjam.DefaultConfig()
	cfg.Jammer = ctjam.JammerMode(*mode)
	cfg.Seed = *seed

	var (
		policy *ctjam.Policy
		err    error
		rl     = ctjam.SchemeMDP
	)
	if *useDQN {
		fmt.Printf("training DQN (%d slots)...\n", *dqnSlots)
		policy, err = ctjam.TrainDQN(cfg, *dqnSlots)
		rl = ctjam.SchemeRL
	} else {
		policy, err = ctjam.SolveMDP(cfg)
	}
	if err != nil {
		return err
	}

	results, err := ctjam.FieldCompare(cfg,
		[]ctjam.Scheme{ctjam.SchemePassive, ctjam.SchemeRandom, rl},
		policy,
		ctjam.FieldOptions{
			Nodes:        *nodes,
			SlotDuration: *slotDur,
			JammerSlot:   *jamSlot,
			Slots:        *slots,
		},
		true /* includeNoJammer */)
	if err != nil {
		return err
	}

	baseline := results[len(results)-1].GoodputPktsPerSlot
	fmt.Printf("%-10s %16s %14s %8s %10s\n", "scheme", "goodput pkt/slot", "vs no-jammer", "ST%", "util%")
	for _, r := range results {
		fmt.Printf("%-10s %16.0f %13.1f%% %8.1f %10.2f\n",
			r.Scheme, r.GoodputPktsPerSlot, 100*r.GoodputPktsPerSlot/baseline,
			100*r.ST, 100*r.Utilization)
	}
	fmt.Println("paper (Fig. 11a): PSV 216 (37.6%), Rand 311 (54.1%), RL 431 (78.5%), w/o Jx 575")
	return nil
}
