// Command ctjam-trace runs an anti-jamming scheme through the slot-level
// environment and exports the per-slot trace (channel, power, outcome,
// reward) as CSV — the raw material for channel-usage plots and policy
// debugging.
//
// Usage:
//
//	ctjam-trace [-slots 2000] [-scheme mdp|passive|random|static]
//	            [-mode max|random] [-out trace.csv] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ctjam/internal/core"
	"ctjam/internal/env"
	"ctjam/internal/ids"
	"ctjam/internal/jammer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctjam-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ctjam-trace", flag.ContinueOnError)
	var (
		slots  = fs.Int("slots", 2000, "slots to trace")
		scheme = fs.String("scheme", "mdp", "scheme: mdp, passive, random or static")
		mode   = fs.String("mode", "max", "jammer power mode")
		out    = fs.String("out", "", "CSV output path (default: stdout)")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := env.DefaultConfig()
	cfg.Seed = *seed
	switch *mode {
	case "max":
		cfg.JammerMode = jammer.ModeMax
	case "random":
		cfg.JammerMode = jammer.ModeRandom
	default:
		return fmt.Errorf("unknown jammer mode %q", *mode)
	}

	agent, err := buildAgent(*scheme, cfg)
	if err != nil {
		return err
	}
	e, err := env.New(cfg)
	if err != nil {
		return err
	}
	counters, records, err := env.RunTrace(e, agent, *slots)
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "slot,channel,power,outcome,hopped,reward,jam_power"); err != nil {
		return err
	}
	for _, r := range records {
		hopped := "0"
		if r.Hopped {
			hopped = "1"
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%s,%s,%s\n",
			r.Slot, r.Channel, r.Power, r.Outcome,
			hopped,
			strconv.FormatFloat(r.Reward, 'f', -1, 64),
			strconv.FormatFloat(r.JamPower, 'f', -1, 64)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	ev := ids.FromTrace(records)
	fmt.Fprintf(os.Stderr, "traced %d slots: %s; loss bursts: %d\n",
		counters.Slots, counters.String(), ev.LossBursts)
	return nil
}

func buildAgent(scheme string, cfg env.Config) (env.Agent, error) {
	switch scheme {
	case "mdp":
		model, err := core.NewModel(core.ParamsFromEnv(cfg))
		if err != nil {
			return nil, err
		}
		return core.NewMDPAgent(model, nil, cfg.Channels, cfg.SweepWidth)
	case "passive":
		return core.NewPassiveFH(cfg.Channels, cfg.SweepWidth)
	case "random":
		return core.NewRandomFH(cfg.Channels, cfg.SweepWidth, len(cfg.TxPowers))
	case "static":
		return core.Static{}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}
