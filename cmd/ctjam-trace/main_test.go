package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-slots", "300", "-scheme", "passive"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 301 { // header + 300 slots
		t.Fatalf("got %d lines, want 301", len(lines))
	}
	if !strings.HasPrefix(lines[0], "slot,channel,power,outcome") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first record = %q", lines[1])
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"-slots", "100", "-scheme", "mdp", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 101 {
		t.Fatalf("file has %d lines, want 101", lines)
	}
	if buf.Len() != 0 {
		t.Fatal("stdout should be empty when -out is set")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-scheme", "quantum"}, &buf); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	if err := run([]string{"-mode", "quantum"}, &buf); err == nil {
		t.Fatal("expected bad-mode error")
	}
}
